// Full-pipeline integration test: the Figure-1 architecture end to end.
// A simulated crawler produces new versions; the diff module computes
// deltas; the repository stores the chain (and survives a save/load
// round trip); the alerter evaluates subscriptions; the statistics
// collector learns label volatility. Every stage's invariants are checked
// on every cycle.

#include <filesystem>

#include "core/buld.h"
#include "delta/apply.h"
#include "delta/validate.h"
#include "gtest/gtest.h"
#include "monitor/change_stats.h"
#include "monitor/subscription.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "simulator/web_corpus.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "version/repository.h"
#include "version/storage.h"

namespace xydiff {
namespace {

namespace fs = std::filesystem;

TEST(PipelineTest, CrawlDiffStoreAlertLearn) {
  Rng rng(20020226);  // ICDE 2002 started on Feb 26.

  // The warehouse ingests version 1 of a catalog document.
  DocGenOptions gen;
  gen.target_bytes = 8192;
  gen.with_id_attributes = true;
  VersionRepository repo(GenerateDocument(&rng, gen));
  std::vector<XmlDocument> ground_truth;
  ground_truth.push_back(repo.current().Clone());

  Alerter alerter;
  XY_ASSERT_OK(alerter.Subscribe("any-insert", "//*", ChangeKind::kInsert));
  XY_ASSERT_OK(alerter.Subscribe("item-watch", "//item"));
  ChangeStatistics stats;

  const ChangeSimOptions weekly = WeeklyWebChangeProfile();
  const int kCycles = 8;
  size_t total_alerts = 0;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    // Crawler fetches a changed version.
    Result<SimulatedChange> crawl =
        SimulateChanges(repo.current(), weekly, &rng);
    ASSERT_TRUE(crawl.ok());
    XmlDocument old_version = repo.current().Clone();

    // Diff + store.
    Result<int> version = repo.Commit(std::move(crawl->new_version));
    ASSERT_TRUE(version.ok()) << version.status().ToString();
    ground_truth.push_back(repo.current().Clone());

    // The stored delta is structurally valid and reconstructs the commit.
    Result<const Delta*> delta = repo.DeltaFor(*version - 1);
    ASSERT_TRUE(delta.ok());
    XY_EXPECT_OK(ValidateDelta(**delta));
    {
      XmlDocument check = old_version.Clone();
      XY_ASSERT_OK(ApplyDelta(**delta, &check));
      EXPECT_TRUE(DocsEqualWithXids(check, repo.current()));
    }

    // Alerter and statistics consume the same delta.
    total_alerts +=
        alerter.Evaluate(**delta, old_version, repo.current()).size();
    stats.Accumulate(**delta, old_version, repo.current());
  }

  ASSERT_EQ(repo.version_count(), kCycles + 1);
  EXPECT_EQ(stats.delta_count(), static_cast<size_t>(kCycles));
  EXPECT_GT(total_alerts, 0u);

  // Every historical version reconstructs exactly.
  for (int v = 1; v <= repo.version_count(); ++v) {
    Result<XmlDocument> doc = repo.Checkout(v);
    ASSERT_TRUE(doc.ok());
    EXPECT_TRUE(
        DocsEqualWithXids(*doc, ground_truth[static_cast<size_t>(v) - 1]))
        << "version " << v;
  }

  // Aggregated changes v1 -> newest replay correctly in one step.
  {
    Result<Delta> overall = repo.ChangesBetween(1, repo.version_count());
    ASSERT_TRUE(overall.ok());
    XY_EXPECT_OK(ValidateDelta(*overall));
    XmlDocument replay = ground_truth.front().Clone();
    XY_ASSERT_OK(ApplyDelta(*overall, &replay));
    EXPECT_TRUE(DocsEqualWithXids(replay, repo.current()));
  }

  // The whole warehouse survives persistence.
  const fs::path dir =
      fs::temp_directory_path() /
      ("xydiff_pipeline_test_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  XY_ASSERT_OK(SaveRepository(repo, dir.string()));
  Result<VersionRepository> reloaded = LoadRepository(dir.string());
  ASSERT_TRUE(reloaded.ok());
  for (int v = 1; v <= repo.version_count(); ++v) {
    Result<XmlDocument> doc = reloaded->Checkout(v);
    ASSERT_TRUE(doc.ok());
    EXPECT_TRUE(
        DocsEqualWithXids(*doc, ground_truth[static_cast<size_t>(v) - 1]));
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace xydiff
