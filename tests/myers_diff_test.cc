#include "baseline/myers_diff.h"

#include "gtest/gtest.h"
#include "util/random.h"
#include "util/string_util.h"

namespace xydiff {
namespace {

TEST(MyersDiffTest, IdenticalTexts) {
  const LineDiffResult r = MyersLineDiff("a\nb\nc\n", "a\nb\nc\n");
  EXPECT_TRUE(r.hunks.empty());
  EXPECT_EQ(r.deleted_lines, 0u);
  EXPECT_EQ(r.added_lines, 0u);
  EXPECT_EQ(r.output_bytes, 0u);
}

TEST(MyersDiffTest, SingleLineChange) {
  const LineDiffResult r = MyersLineDiff("a\nb\nc\n", "a\nX\nc\n");
  ASSERT_EQ(r.hunks.size(), 1u);
  EXPECT_EQ(r.deleted_lines, 1u);
  EXPECT_EQ(r.added_lines, 1u);
  EXPECT_EQ(r.hunks[0].old_begin, 1u);
  EXPECT_EQ(r.hunks[0].old_end, 2u);
}

TEST(MyersDiffTest, PureInsertion) {
  const LineDiffResult r = MyersLineDiff("a\nc\n", "a\nb\nc\n");
  ASSERT_EQ(r.hunks.size(), 1u);
  EXPECT_EQ(r.deleted_lines, 0u);
  EXPECT_EQ(r.added_lines, 1u);
}

TEST(MyersDiffTest, PureDeletion) {
  const LineDiffResult r = MyersLineDiff("a\nb\nc\n", "a\nc\n");
  ASSERT_EQ(r.hunks.size(), 1u);
  EXPECT_EQ(r.deleted_lines, 1u);
  EXPECT_EQ(r.added_lines, 0u);
}

TEST(MyersDiffTest, EmptyInputs) {
  EXPECT_TRUE(MyersLineDiff("", "").hunks.empty());
  const LineDiffResult add_all = MyersLineDiff("", "a\nb\n");
  EXPECT_EQ(add_all.added_lines, 2u);
  const LineDiffResult del_all = MyersLineDiff("a\nb\n", "");
  EXPECT_EQ(del_all.deleted_lines, 2u);
}

TEST(MyersDiffTest, CompletelyDifferent) {
  const LineDiffResult r = MyersLineDiff("a\nb\n", "x\ny\nz\n");
  EXPECT_EQ(r.deleted_lines, 2u);
  EXPECT_EQ(r.added_lines, 3u);
}

TEST(MyersDiffTest, FindsMinimalScriptOnKnownCase) {
  // Classic ABCABBA -> CBABAC example: shortest script size D = 5.
  const LineDiffResult r = MyersLineDiff("A\nB\nC\nA\nB\nB\nA\n",
                                         "C\nB\nA\nB\nA\nC\n");
  EXPECT_EQ(r.deleted_lines + r.added_lines, 5u);
}

TEST(MyersDiffTest, EdScriptFormat) {
  const std::string old_text = "keep\ndrop\nkeep2\n";
  const std::string new_text = "keep\nadded\nkeep2\n";
  const LineDiffResult r = MyersLineDiff(old_text, new_text);
  const std::string script = RenderEdScript(old_text, new_text, r);
  EXPECT_NE(script.find("2c2"), std::string::npos) << script;
  EXPECT_NE(script.find("< drop"), std::string::npos);
  EXPECT_NE(script.find("> added"), std::string::npos);
  EXPECT_NE(script.find("---"), std::string::npos);
  EXPECT_EQ(script.size(), r.output_bytes);
}

TEST(MyersDiffTest, EdScriptPureDeleteHeader) {
  const std::string old_text = "a\nb\nc\n";
  const std::string new_text = "a\nc\n";
  const LineDiffResult r = MyersLineDiff(old_text, new_text);
  const std::string script = RenderEdScript(old_text, new_text, r);
  EXPECT_NE(script.find("2d1"), std::string::npos) << script;
}

TEST(MyersDiffTest, EdScriptPureAddHeader) {
  const std::string old_text = "a\nc\n";
  const std::string new_text = "a\nb\nc\n";
  const LineDiffResult r = MyersLineDiff(old_text, new_text);
  const std::string script = RenderEdScript(old_text, new_text, r);
  EXPECT_NE(script.find("1a2"), std::string::npos) << script;
}

TEST(MyersDiffTest, OutputBytesMatchRenderedScript) {
  Rng rng(77);
  for (int round = 0; round < 30; ++round) {
    std::string old_text;
    std::string new_text;
    const int lines = 1 + static_cast<int>(rng.NextIndex(60));
    for (int i = 0; i < lines; ++i) {
      const std::string line = rng.NextWord(1, 12) + "\n";
      if (rng.NextBool(0.8)) old_text += line;
      if (rng.NextBool(0.8)) new_text += line;
      if (rng.NextBool(0.1)) new_text += rng.NextWord(1, 12) + "\n";
    }
    const LineDiffResult r = MyersLineDiff(old_text, new_text);
    EXPECT_EQ(RenderEdScript(old_text, new_text, r).size(), r.output_bytes)
        << "round " << round;
  }
}

TEST(MyersDiffTest, ScriptIsConsistentTransformation) {
  // Applying the hunks (replacing old line ranges by new ones) must yield
  // the new text. Verified structurally via the hunk coordinates.
  Rng rng(88);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::string> old_lines;
    std::vector<std::string> new_lines;
    const int n = static_cast<int>(rng.NextIndex(40));
    for (int i = 0; i < n; ++i) {
      const std::string w = rng.NextWord(1, 3);
      if (rng.NextBool(0.7)) old_lines.push_back(w);
      if (rng.NextBool(0.7)) new_lines.push_back(w);
    }
    std::string old_text;
    for (const auto& l : old_lines) old_text += l + "\n";
    std::string new_text;
    for (const auto& l : new_lines) new_text += l + "\n";

    const LineDiffResult r = MyersLineDiff(old_text, new_text);
    // Reconstruct.
    std::vector<std::string> rebuilt;
    size_t oi = 0;
    for (const LineHunk& h : r.hunks) {
      while (oi < h.old_begin) rebuilt.push_back(old_lines[oi++]);
      for (size_t j = h.new_begin; j < h.new_end; ++j) {
        rebuilt.push_back(new_lines[j]);
      }
      oi = h.old_end;
    }
    while (oi < old_lines.size()) rebuilt.push_back(old_lines[oi++]);
    ASSERT_EQ(rebuilt, new_lines) << "round " << round;
  }
}

TEST(MyersDiffTest, BudgetExhaustionDegradesGracefully) {
  // Force the bailout with a tiny budget: everything is replaced but the
  // result remains a valid transformation.
  std::string a;
  std::string b;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    a += rng.NextWord(1, 6) + "\n";
    b += rng.NextWord(1, 6) + "\n";
  }
  const LineDiffResult r = MyersLineDiff(a, b, /*max_d=*/1);
  EXPECT_EQ(r.deleted_lines, 200u);
  EXPECT_EQ(r.added_lines, 200u);
}

}  // namespace
}  // namespace xydiff
