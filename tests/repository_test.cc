#include "version/repository.h"

#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace xydiff {
namespace {

TEST(RepositoryTest, SingleVersionHistory) {
  VersionRepository repo(MustParse("<r><a>one</a></r>"));
  EXPECT_EQ(repo.version_count(), 1);
  EXPECT_EQ(repo.current_version(), 1);
  Result<XmlDocument> v1 = repo.Checkout(1);
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(DocsEqualWithXids(*v1, repo.current()));
}

TEST(RepositoryTest, CommitAndCheckoutAllVersions) {
  VersionRepository repo(MustParse("<r><a>v1</a></r>"));
  XmlDocument v1_copy = repo.current().Clone();

  Result<int> v2 = repo.Commit(MustParse("<r><a>v2</a><b/></r>"));
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2);
  XmlDocument v2_copy = repo.current().Clone();

  Result<int> v3 = repo.Commit(MustParse("<r><b/><a>v3</a><c/></r>"));
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(repo.version_count(), 3);

  Result<XmlDocument> back1 = repo.Checkout(1);
  ASSERT_TRUE(back1.ok());
  EXPECT_TRUE(DocsEqualWithXids(*back1, v1_copy));

  Result<XmlDocument> back2 = repo.Checkout(2);
  ASSERT_TRUE(back2.ok());
  EXPECT_TRUE(DocsEqualWithXids(*back2, v2_copy));

  Result<XmlDocument> back3 = repo.Checkout(3);
  ASSERT_TRUE(back3.ok());
  EXPECT_TRUE(DocsEqualWithXids(*back3, repo.current()));
}

TEST(RepositoryTest, CheckoutBoundsChecked) {
  VersionRepository repo(MustParse("<r/>"));
  EXPECT_EQ(repo.Checkout(0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(repo.Checkout(2).status().code(), StatusCode::kNotFound);
}

TEST(RepositoryTest, DeltaForReturnsStoredDelta) {
  VersionRepository repo(MustParse("<r><t>x</t></r>"));
  ASSERT_TRUE(repo.Commit(MustParse("<r><t>y</t></r>")).ok());
  Result<const Delta*> delta = repo.DeltaFor(1);
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ((*delta)->updates().size(), 1u);
  EXPECT_EQ((*delta)->updates()[0].new_value, "y");
  EXPECT_EQ(repo.DeltaFor(2).status().code(), StatusCode::kNotFound);
}

TEST(RepositoryTest, ChangesBetweenSkipsIntermediates) {
  VersionRepository repo(MustParse("<r><t>first</t></r>"));
  ASSERT_TRUE(repo.Commit(MustParse("<r><t>second</t></r>")).ok());
  ASSERT_TRUE(repo.Commit(MustParse("<r><t>third</t></r>")).ok());

  Result<Delta> agg = repo.ChangesBetween(1, 3);
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->updates().size(), 1u);
  EXPECT_EQ(agg->updates()[0].old_value, "first");
  EXPECT_EQ(agg->updates()[0].new_value, "third");

  EXPECT_FALSE(repo.ChangesBetween(2, 2).ok());
  EXPECT_FALSE(repo.ChangesBetween(3, 1).ok());
}

TEST(RepositoryTest, TextAtTravelsThroughTime) {
  VersionRepository repo(MustParse("<r><t>alpha</t></r>"));
  // Find the text node's XID.
  Xid text_xid = kNoXid;
  repo.current().root()->Visit([&](const XmlNode* n) {
    if (n->is_text()) text_xid = n->xid();
  });
  ASSERT_NE(text_xid, kNoXid);
  ASSERT_TRUE(repo.Commit(MustParse("<r><t>beta</t></r>")).ok());

  Result<std::optional<std::string>> v1 = repo.TextAt(1, text_xid);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->value(), "alpha");
  Result<std::optional<std::string>> v2 = repo.TextAt(2, text_xid);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->value(), "beta");
  Result<std::optional<std::string>> missing = repo.TextAt(1, 9999);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->has_value());
}

TEST(RepositoryTest, LongSimulatedHistory) {
  Rng rng(21);
  DocGenOptions gen;
  gen.target_bytes = 4096;
  XmlDocument base = GenerateDocument(&rng, gen);
  VersionRepository repo(std::move(base));

  std::vector<XmlDocument> snapshots;
  snapshots.push_back(repo.current().Clone());
  for (int v = 0; v < 6; ++v) {
    Result<SimulatedChange> change =
        SimulateChanges(repo.current(), ChangeSimOptions{}, &rng);
    ASSERT_TRUE(change.ok());
    ASSERT_TRUE(repo.Commit(std::move(change->new_version)).ok());
    snapshots.push_back(repo.current().Clone());
  }
  ASSERT_EQ(repo.version_count(), 7);
  for (int v = 1; v <= 7; ++v) {
    Result<XmlDocument> doc = repo.Checkout(v);
    ASSERT_TRUE(doc.ok());
    EXPECT_TRUE(DocsEqualWithXids(*doc, snapshots[static_cast<size_t>(v) - 1]))
        << "version " << v;
  }
  EXPECT_GT(repo.stored_delta_bytes(), 0u);
  EXPECT_GT(repo.last_commit_stats().nodes_new, 0u);
}

}  // namespace
}  // namespace xydiff
