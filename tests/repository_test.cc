#include "version/repository.h"

#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace xydiff {
namespace {

TEST(RepositoryTest, SingleVersionHistory) {
  VersionRepository repo(MustParse("<r><a>one</a></r>"));
  EXPECT_EQ(repo.version_count(), 1);
  EXPECT_EQ(repo.current_version(), 1);
  Result<XmlDocument> v1 = repo.Checkout(1);
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(DocsEqualWithXids(*v1, repo.current()));
}

TEST(RepositoryTest, CommitAndCheckoutAllVersions) {
  VersionRepository repo(MustParse("<r><a>v1</a></r>"));
  XmlDocument v1_copy = repo.current().Clone();

  Result<int> v2 = repo.Commit(MustParse("<r><a>v2</a><b/></r>"));
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2);
  XmlDocument v2_copy = repo.current().Clone();

  Result<int> v3 = repo.Commit(MustParse("<r><b/><a>v3</a><c/></r>"));
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(repo.version_count(), 3);

  Result<XmlDocument> back1 = repo.Checkout(1);
  ASSERT_TRUE(back1.ok());
  EXPECT_TRUE(DocsEqualWithXids(*back1, v1_copy));

  Result<XmlDocument> back2 = repo.Checkout(2);
  ASSERT_TRUE(back2.ok());
  EXPECT_TRUE(DocsEqualWithXids(*back2, v2_copy));

  Result<XmlDocument> back3 = repo.Checkout(3);
  ASSERT_TRUE(back3.ok());
  EXPECT_TRUE(DocsEqualWithXids(*back3, repo.current()));
}

TEST(RepositoryTest, CheckoutBoundsChecked) {
  VersionRepository repo(MustParse("<r/>"));
  EXPECT_EQ(repo.Checkout(0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(repo.Checkout(2).status().code(), StatusCode::kNotFound);
}

TEST(RepositoryTest, DeltaForReturnsStoredDelta) {
  VersionRepository repo(MustParse("<r><t>x</t></r>"));
  ASSERT_TRUE(repo.Commit(MustParse("<r><t>y</t></r>")).ok());
  Result<const Delta*> delta = repo.DeltaFor(1);
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ((*delta)->updates().size(), 1u);
  EXPECT_EQ((*delta)->updates()[0].new_value, "y");
  EXPECT_EQ(repo.DeltaFor(2).status().code(), StatusCode::kNotFound);
}

TEST(RepositoryTest, ChangesBetweenSkipsIntermediates) {
  VersionRepository repo(MustParse("<r><t>first</t></r>"));
  ASSERT_TRUE(repo.Commit(MustParse("<r><t>second</t></r>")).ok());
  ASSERT_TRUE(repo.Commit(MustParse("<r><t>third</t></r>")).ok());

  Result<Delta> agg = repo.ChangesBetween(1, 3);
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->updates().size(), 1u);
  EXPECT_EQ(agg->updates()[0].old_value, "first");
  EXPECT_EQ(agg->updates()[0].new_value, "third");

  EXPECT_FALSE(repo.ChangesBetween(2, 2).ok());
  EXPECT_FALSE(repo.ChangesBetween(3, 1).ok());
}

TEST(RepositoryTest, TextAtTravelsThroughTime) {
  VersionRepository repo(MustParse("<r><t>alpha</t></r>"));
  // Find the text node's XID.
  Xid text_xid = kNoXid;
  repo.current().root()->Visit([&](const XmlNode* n) {
    if (n->is_text()) text_xid = n->xid();
  });
  ASSERT_NE(text_xid, kNoXid);
  ASSERT_TRUE(repo.Commit(MustParse("<r><t>beta</t></r>")).ok());

  Result<std::optional<std::string>> v1 = repo.TextAt(1, text_xid);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->value(), "alpha");
  Result<std::optional<std::string>> v2 = repo.TextAt(2, text_xid);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->value(), "beta");
  Result<std::optional<std::string>> missing = repo.TextAt(1, 9999);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->has_value());
}

TEST(RepositoryTest, LongSimulatedHistory) {
  Rng rng(21);
  DocGenOptions gen;
  gen.target_bytes = 4096;
  XmlDocument base = GenerateDocument(&rng, gen);
  VersionRepository repo(std::move(base));

  std::vector<XmlDocument> snapshots;
  snapshots.push_back(repo.current().Clone());
  for (int v = 0; v < 6; ++v) {
    Result<SimulatedChange> change =
        SimulateChanges(repo.current(), ChangeSimOptions{}, &rng);
    ASSERT_TRUE(change.ok());
    ASSERT_TRUE(repo.Commit(std::move(change->new_version)).ok());
    snapshots.push_back(repo.current().Clone());
  }
  ASSERT_EQ(repo.version_count(), 7);
  for (int v = 1; v <= 7; ++v) {
    Result<XmlDocument> doc = repo.Checkout(v);
    ASSERT_TRUE(doc.ok());
    EXPECT_TRUE(DocsEqualWithXids(*doc, snapshots[static_cast<size_t>(v) - 1]))
        << "version " << v;
  }
  EXPECT_GT(repo.stored_delta_bytes(), 0u);
  EXPECT_GT(repo.last_commit_stats().nodes_new, 0u);
}

// --- reconstruction index (checkpoint + skip-deltas) -------------------

size_t CeilLog2(size_t n) {
  size_t bits = 0;
  while ((size_t{1} << bits) < n) ++bits;
  return bits;
}

/// Grows a repository through `commits` simulated changes, returning
/// clones of every version for ground truth.
std::vector<XmlDocument> Grow(VersionRepository* repo, int commits,
                              Rng* rng) {
  std::vector<XmlDocument> snapshots;
  snapshots.push_back(repo->current().Clone());
  for (int v = 0; v < commits; ++v) {
    Result<SimulatedChange> change =
        SimulateChanges(repo->current(), ChangeSimOptions{}, rng);
    EXPECT_TRUE(change.ok());
    EXPECT_TRUE(repo->Commit(std::move(change->new_version)).ok());
    snapshots.push_back(repo->current().Clone());
  }
  return snapshots;
}

TEST(RepositoryTest, IndexedCheckoutIsLogarithmicAndExact) {
  Rng rng(31);
  DocGenOptions gen;
  gen.target_bytes = 2048;
  VersionRepository repo(GenerateDocument(&rng, gen));
  // Activate the index up front; Commit maintains it from then on.
  XY_ASSERT_OK(repo.EnsureReconstructionIndex());
  const std::vector<XmlDocument> snapshots = Grow(&repo, 32, &rng);
  ASSERT_EQ(repo.version_count(), 33);

  const size_t bound = CeilLog2(static_cast<size_t>(repo.version_count())) + 2;
  for (int v = 1; v <= repo.version_count(); ++v) {
    CheckoutStats stats;
    Result<XmlDocument> doc = repo.Checkout(v, &stats);
    ASSERT_TRUE(doc.ok()) << "version " << v;
    EXPECT_TRUE(DocsEqualWithXids(*doc, snapshots[static_cast<size_t>(v) - 1]))
        << "version " << v;
    EXPECT_LE(stats.applications, bound)
        << "version " << v << " took " << stats.applications
        << " applications";
  }
  // Old versions must ride the forward skip path, not a long replay.
  CheckoutStats stats;
  XY_ASSERT_OK(repo.Checkout(1, &stats).status());
  EXPECT_TRUE(stats.forward);
  EXPECT_EQ(stats.applications, 0u);  // Version 1 IS the checkpoint.
  XY_ASSERT_OK(repo.Checkout(2, &stats).status());
  EXPECT_TRUE(stats.forward);
  EXPECT_EQ(stats.applications, 1u);  // popcount(2-1).
}

TEST(RepositoryTest, UnindexedCheckoutStaysBackwardCompatible) {
  Rng rng(32);
  DocGenOptions gen;
  gen.target_bytes = 1024;
  VersionRepository repo(GenerateDocument(&rng, gen));
  const std::vector<XmlDocument> snapshots = Grow(&repo, 5, &rng);
  // Without activation, reconstruction is the plain backward replay.
  CheckoutStats stats;
  Result<XmlDocument> v1 = repo.Checkout(1, &stats);
  ASSERT_TRUE(v1.ok());
  EXPECT_FALSE(stats.forward);
  EXPECT_EQ(stats.applications, 5u);
  EXPECT_TRUE(DocsEqualWithXids(*v1, snapshots[0]));
}

TEST(RepositoryTest, EnsureActivatesIndexOnExistingChain) {
  Rng rng(33);
  DocGenOptions gen;
  gen.target_bytes = 1024;
  VersionRepository grown(GenerateDocument(&rng, gen));
  const std::vector<XmlDocument> snapshots = Grow(&grown, 12, &rng);

  // Rebuild from persisted-style parts: chain only, no index.
  std::vector<Delta> chain;
  for (const Delta& d : grown.deltas()) chain.push_back(d.Clone());
  VersionRepository repo = VersionRepository::FromParts(
      grown.current().Clone(), std::move(chain));
  XY_ASSERT_OK(repo.EnsureReconstructionIndex());

  const size_t bound = CeilLog2(static_cast<size_t>(repo.version_count())) + 2;
  for (int v = 1; v <= repo.version_count(); ++v) {
    CheckoutStats stats;
    Result<XmlDocument> doc = repo.Checkout(v, &stats);
    ASSERT_TRUE(doc.ok()) << "version " << v;
    EXPECT_TRUE(DocsEqualWithXids(*doc, snapshots[static_cast<size_t>(v) - 1]))
        << "version " << v;
    EXPECT_LE(stats.applications, bound) << "version " << v;
  }
  // The index is complete: every level the chain supports exists.
  const ReconstructionIndex& index = repo.reconstruction_index();
  ASSERT_TRUE(index.checkpoint.has_value());
  ASSERT_EQ(index.levels.size(), 3u);  // Spans 2, 4, 8 fit in 12 deltas.
  EXPECT_EQ(index.levels[0].size(), 6u);
  EXPECT_EQ(index.levels[1].size(), 3u);
  EXPECT_EQ(index.levels[2].size(), 1u);

  // A second Ensure is an idempotent no-op.
  XY_ASSERT_OK(repo.EnsureReconstructionIndex());
  ASSERT_EQ(index.levels.size(), 3u);
}

TEST(RepositoryTest, ForwardAndBackwardPathsAgreeEverywhere) {
  Rng rng(34);
  DocGenOptions gen;
  gen.target_bytes = 2048;
  VersionRepository indexed(GenerateDocument(&rng, gen));
  XY_ASSERT_OK(indexed.EnsureReconstructionIndex());
  const std::vector<XmlDocument> snapshots = Grow(&indexed, 9, &rng);

  std::vector<Delta> chain;
  for (const Delta& d : indexed.deltas()) chain.push_back(d.Clone());
  const VersionRepository plain = VersionRepository::FromParts(
      indexed.current().Clone(), std::move(chain));

  for (int v = 1; v <= indexed.version_count(); ++v) {
    Result<XmlDocument> fast = indexed.Checkout(v);
    Result<XmlDocument> slow = plain.Checkout(v);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    EXPECT_TRUE(DocsEqualWithXids(*fast, *slow)) << "version " << v;
    EXPECT_TRUE(DocsEqualWithXids(*fast, snapshots[static_cast<size_t>(v) - 1]))
        << "version " << v;
  }
}

}  // namespace
}  // namespace xydiff
