// The paper's central correctness claim (§1, §5): the diff "is 'correct'
// in that it finds a set of changes that is sufficient to transform the
// old version into the new version ... it misses no changes". These
// property tests sweep randomized documents and randomized change mixes
// and check, for every seed:
//   * apply(diff(A,B), A) == B   (structure AND persistent identifiers)
//   * apply(invert(diff(A,B)), B) == A
//   * the simulator's perfect delta also transforms A into B
//   * the delta survives XML serialization round trips.

#include <tuple>

#include "core/buld.h"
#include "delta/apply.h"
#include "delta/delta_xml.h"
#include "delta/invert.h"
#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "version/warehouse.h"

namespace xydiff {
namespace {

struct Scenario {
  uint64_t seed;
  size_t doc_bytes;
  double delete_p;
  double update_p;
  double insert_p;
  double move_p;
  bool with_ids;
  int section_depth = 3;   // Document shape: nesting depth...
  int max_fanout = 6;      // ...and breadth.
};

class RoundTripProperty : public ::testing::TestWithParam<Scenario> {};

TEST_P(RoundTripProperty, DiffApplyReconstructsNewVersion) {
  const Scenario& s = GetParam();
  Rng rng(s.seed);

  DocGenOptions gen;
  gen.target_bytes = s.doc_bytes;
  gen.with_id_attributes = s.with_ids;
  gen.section_depth = s.section_depth;
  gen.max_fanout = s.max_fanout;
  XmlDocument base = GenerateDocument(&rng, gen);
  base.AssignInitialXids();

  ChangeSimOptions sim;
  sim.delete_probability = s.delete_p;
  sim.update_probability = s.update_p;
  sim.insert_probability = s.insert_p;
  sim.move_probability = s.move_p;
  Result<SimulatedChange> change = SimulateChanges(base, sim, &rng);
  ASSERT_TRUE(change.ok()) << change.status().ToString();

  // The simulator's perfect delta must itself be valid.
  {
    XmlDocument check = base.Clone();
    XY_ASSERT_OK(ApplyDelta(change->perfect_delta, &check));
    ASSERT_TRUE(DocsEqualWithXids(check, change->new_version));
  }

  // Diff and apply.
  XmlDocument old_doc = base.Clone();
  XmlDocument new_doc = change->new_version.Clone();
  DiffStats stats;
  Result<Delta> delta = XyDiff(&old_doc, &new_doc, DiffOptions{}, &stats);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();

  {
    XmlDocument patched = base.Clone();
    XY_ASSERT_OK(ApplyDelta(*delta, &patched));
    EXPECT_TRUE(DocsEqualWithXids(patched, new_doc))
        << "seed=" << s.seed << " bytes=" << s.doc_bytes;
  }

  // Inverse application restores the old version.
  {
    XmlDocument reverted = new_doc.Clone();
    XY_ASSERT_OK(ApplyDeltaInverse(*delta, &reverted));
    EXPECT_TRUE(DocsEqualWithXids(reverted, old_doc));
  }

  // Delta XML round trip preserves semantics.
  {
    Result<Delta> reparsed = ParseDelta(SerializeDelta(*delta));
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    XmlDocument patched = base.Clone();
    XY_ASSERT_OK(ApplyDelta(*reparsed, &patched));
    EXPECT_TRUE(DocsEqualWithXids(patched, new_doc));
  }
}

// Same property, but through the production ingest path: both versions
// are serialized to text and re-parsed into arena-backed documents (the
// parser's fast path), then diffed and patched in the arena domain. This
// pins the arena DOM to the exact semantics of the heap-built trees.
TEST_P(RoundTripProperty, ArenaParsedDocumentsDiffAndPatchIdentically) {
  const Scenario& s = GetParam();
  Rng rng(s.seed);

  DocGenOptions gen;
  gen.target_bytes = s.doc_bytes;
  gen.with_id_attributes = s.with_ids;
  gen.section_depth = s.section_depth;
  gen.max_fanout = s.max_fanout;
  XmlDocument base = GenerateDocument(&rng, gen);
  base.AssignInitialXids();

  ChangeSimOptions sim;
  sim.delete_probability = s.delete_p;
  sim.update_probability = s.update_p;
  sim.insert_probability = s.insert_p;
  sim.move_probability = s.move_p;
  Result<SimulatedChange> change = SimulateChanges(base, sim, &rng);
  ASSERT_TRUE(change.ok()) << change.status().ToString();

  const std::string old_xml = SerializeDocument(base);
  const std::string new_xml = SerializeDocument(change->new_version);

  // Serialize -> parse must be the identity on the serialized form.
  Result<XmlDocument> old_doc = ParseXml(old_xml);
  Result<XmlDocument> new_doc = ParseXml(new_xml);
  ASSERT_TRUE(old_doc.ok()) << old_doc.status().ToString();
  ASSERT_TRUE(new_doc.ok()) << new_doc.status().ToString();
  ASSERT_NE(old_doc->arena(), nullptr);  // Parser output is arena-backed.
  EXPECT_EQ(SerializeDocument(*old_doc), old_xml);
  EXPECT_EQ(SerializeDocument(*new_doc), new_xml);

  old_doc->AssignInitialXids();
  Result<Delta> delta = XyDiff(&old_doc.value(), &new_doc.value());
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();

  Result<XmlDocument> patched = ParseXml(old_xml);
  ASSERT_TRUE(patched.ok());
  patched->AssignInitialXids();
  XY_ASSERT_OK(ApplyDelta(*delta, &patched.value()));
  EXPECT_TRUE(DocsEqualWithXids(*patched, *new_doc))
      << "seed=" << s.seed << " bytes=" << s.doc_bytes;

  // And back again.
  XY_ASSERT_OK(ApplyDeltaInverse(*delta, &patched.value()));
  EXPECT_TRUE(DocsEqualWithXids(*patched, *old_doc));
}

// Same property a third time, now through the parallel warehouse
// pipeline: the raw serialized versions go through DiffBatch (parse →
// diff → store on the work-stealing pool), and the stored versions
// checked out afterwards must equal the originals. Whatever the
// scheduler does, apply(diff(v1,v2), v1) == v2 must survive the
// production batch path too.
TEST_P(RoundTripProperty, DiffBatchPipelineStoresExactVersions) {
  const Scenario& s = GetParam();
  Rng rng(s.seed);

  DocGenOptions gen;
  gen.target_bytes = s.doc_bytes;
  gen.with_id_attributes = s.with_ids;
  gen.section_depth = s.section_depth;
  gen.max_fanout = s.max_fanout;
  XmlDocument base = GenerateDocument(&rng, gen);
  base.AssignInitialXids();

  ChangeSimOptions sim;
  sim.delete_probability = s.delete_p;
  sim.update_probability = s.update_p;
  sim.insert_probability = s.insert_p;
  sim.move_probability = s.move_p;
  Result<SimulatedChange> change = SimulateChanges(base, sim, &rng);
  ASSERT_TRUE(change.ok()) << change.status().ToString();

  const std::string old_xml = SerializeDocument(base);
  const std::string new_xml = SerializeDocument(change->new_version);

  Warehouse warehouse;
  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 4;
  pipeline.queue_capacity = 2;
  auto v1_reports = warehouse.DiffBatch({{"doc", old_xml}}, pipeline);
  ASSERT_EQ(v1_reports.size(), 1u);
  ASSERT_TRUE(v1_reports[0].ok()) << v1_reports[0].status().ToString();
  EXPECT_TRUE(v1_reports[0]->first_version);

  auto v2_reports = warehouse.DiffBatch({{"doc", new_xml}}, pipeline);
  ASSERT_EQ(v2_reports.size(), 1u);
  ASSERT_TRUE(v2_reports[0].ok()) << v2_reports[0].status().ToString();
  EXPECT_EQ(v2_reports[0]->version, 2);

  // The stored version chain reconstructs both versions structurally
  // (XIDs are the warehouse's own assignment, so compare structure).
  Result<XmlDocument> checked_v2 = warehouse.Checkout("doc", 2);
  ASSERT_TRUE(checked_v2.ok()) << checked_v2.status().ToString();
  Result<XmlDocument> expected_v2 = ParseXml(new_xml);
  ASSERT_TRUE(expected_v2.ok());
  EXPECT_TRUE(DocsEqual(*checked_v2, *expected_v2))
      << "seed=" << s.seed << " bytes=" << s.doc_bytes;

  Result<XmlDocument> checked_v1 = warehouse.Checkout("doc", 1);
  ASSERT_TRUE(checked_v1.ok()) << checked_v1.status().ToString();
  Result<XmlDocument> expected_v1 = ParseXml(old_xml);
  ASSERT_TRUE(expected_v1.ok());
  EXPECT_TRUE(DocsEqual(*checked_v1, *expected_v1))
      << "seed=" << s.seed << " bytes=" << s.doc_bytes;
}

std::vector<Scenario> MakeScenarios() {
  std::vector<Scenario> scenarios;
  // Paper setting: 10% per operation, varied sizes and seeds.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    for (size_t bytes : {512u, 4096u, 32768u}) {
      scenarios.push_back({seed, bytes, 0.1, 0.1, 0.1, 0.1, false});
    }
  }
  // Few changes (the common web case).
  for (uint64_t seed = 10; seed <= 13; ++seed) {
    scenarios.push_back({seed, 8192, 0.01, 0.03, 0.02, 0.005, false});
  }
  // Heavy churn.
  for (uint64_t seed = 20; seed <= 23; ++seed) {
    scenarios.push_back({seed, 8192, 0.3, 0.3, 0.3, 0.2, false});
  }
  // Move-dominated.
  for (uint64_t seed = 30; seed <= 33; ++seed) {
    scenarios.push_back({seed, 8192, 0.15, 0.0, 0.0, 0.5, false});
  }
  // With ID attributes (Phase 1 active).
  for (uint64_t seed = 40; seed <= 43; ++seed) {
    scenarios.push_back({seed, 8192, 0.1, 0.1, 0.1, 0.1, true});
  }
  // Deep documents (long ancestor chains stress bounded propagation).
  for (uint64_t seed = 50; seed <= 52; ++seed) {
    Scenario s{seed, 8192, 0.1, 0.1, 0.1, 0.1, false};
    s.section_depth = 7;
    s.max_fanout = 3;
    scenarios.push_back(s);
  }
  // Wide flat documents (huge sibling families stress the LOPS path).
  for (uint64_t seed = 60; seed <= 62; ++seed) {
    Scenario s{seed, 16384, 0.1, 0.1, 0.1, 0.3, false};
    s.section_depth = 1;
    s.max_fanout = 40;
    scenarios.push_back(s);
  }
  return scenarios;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RoundTripProperty,
                         ::testing::ValuesIn(MakeScenarios()));

// Degenerate shapes exercised outside the simulator.
TEST(RoundTripEdgeCases, IdenticalDocuments) {
  Result<Delta> delta = XyDiffText("<a><b>x</b><c/></a>",
                                   "<a><b>x</b><c/></a>");
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
}

TEST(RoundTripEdgeCases, CompletelyDifferentDocuments) {
  XmlDocument a = MustParse("<alpha><x>1</x></alpha>");
  a.AssignInitialXids();
  XmlDocument b = MustParse("<beta><y>2</y></beta>");
  Result<Delta> delta = XyDiff(&a, &b);
  ASSERT_TRUE(delta.ok());
  XmlDocument patched = a.Clone();
  XY_ASSERT_OK(ApplyDelta(*delta, &patched));
  EXPECT_TRUE(DocsEqualWithXids(patched, b));
}

TEST(RoundTripEdgeCases, RootRelabelled) {
  XmlDocument a = MustParse("<old><keep>payload stays here</keep></old>");
  a.AssignInitialXids();
  XmlDocument b = MustParse("<new><keep>payload stays here</keep></new>");
  Result<Delta> delta = XyDiff(&a, &b);
  ASSERT_TRUE(delta.ok());
  XmlDocument patched = a.Clone();
  XY_ASSERT_OK(ApplyDelta(*delta, &patched));
  EXPECT_TRUE(DocsEqualWithXids(patched, b));
}

TEST(RoundTripEdgeCases, SingleNodeDocuments) {
  XmlDocument a = MustParse("<a/>");
  a.AssignInitialXids();
  XmlDocument b = MustParse("<b/>");
  Result<Delta> delta = XyDiff(&a, &b);
  ASSERT_TRUE(delta.ok());
  XmlDocument patched = a.Clone();
  XY_ASSERT_OK(ApplyDelta(*delta, &patched));
  EXPECT_TRUE(DocsEqualWithXids(patched, b));
}

}  // namespace
}  // namespace xydiff
