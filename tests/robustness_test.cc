// Failure-injection and fuzz-flavoured robustness tests: malformed XML,
// mutated delta documents and hostile inputs must produce Status errors
// (or succeed), never crash or corrupt memory. Everything is seeded and
// deterministic.

#include <string>

#include "core/buld.h"
#include "delta/apply.h"
#include "delta/delta_xml.h"
#include "delta/validate.h"
#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xydiff {
namespace {

TEST(ParserRobustness, RandomMutationsOfValidXmlNeverCrash) {
  Rng rng(31);
  DocGenOptions gen;
  gen.target_bytes = 2048;
  const std::string base = SerializeDocument(GenerateDocument(&rng, gen));

  int parse_ok = 0;
  for (int round = 0; round < 500; ++round) {
    std::string mutated = base;
    const int mutations = 1 + static_cast<int>(rng.NextIndex(4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.NextIndex(mutated.size());
      switch (rng.NextIndex(4)) {
        case 0:  // Flip a character.
          mutated[pos] = static_cast<char>(rng.NextInRange(1, 127));
          break;
        case 1:  // Delete a span.
          mutated.erase(pos, 1 + rng.NextIndex(8));
          break;
        case 2:  // Duplicate a span.
          mutated.insert(pos, mutated.substr(pos, 1 + rng.NextIndex(8)));
          break;
        case 3: {  // Insert hostile characters.
          const char* bits[] = {"<", ">", "&", "<<!", "]]>", "<!--", "&#x;"};
          mutated.insert(pos, bits[rng.NextIndex(7)]);
          break;
        }
      }
      if (mutated.empty()) mutated = "<x/>";
    }
    Result<XmlDocument> doc = ParseXml(mutated);
    if (doc.ok()) ++parse_ok;  // Either outcome is fine; crashing is not.
  }
  // Sanity: the mutator does break documents most of the time.
  EXPECT_LT(parse_ok, 450);
}

TEST(ParserRobustness, PathologicalInputs) {
  // Long attribute, long text, many attributes, deep nesting at the
  // limit, huge numeric reference, stray nulls.
  std::string long_attr = "<a k=\"" + std::string(1 << 16, 'x') + "\"/>";
  EXPECT_TRUE(ParseXml(long_attr).ok());

  std::string many_attrs = "<a";
  for (int i = 0; i < 500; ++i) {
    many_attrs += " k" + std::to_string(i) + "=\"v\"";
  }
  many_attrs += "/>";
  EXPECT_TRUE(ParseXml(many_attrs).ok());

  EXPECT_FALSE(ParseXml("<a>&#xFFFFFFFFFFFF;</a>").ok());
  EXPECT_FALSE(ParseXml(std::string("<a>\0</a>", 8)).ok());

  std::string unclosed(10000, '<');
  EXPECT_FALSE(ParseXml(unclosed).ok());
}

TEST(DeltaRobustness, MutatedDeltaXmlNeverCrashes) {
  Rng rng(32);
  DocGenOptions gen;
  gen.target_bytes = 2048;
  XmlDocument base = GenerateDocument(&rng, gen);
  base.AssignInitialXids();
  Result<SimulatedChange> change =
      SimulateChanges(base, ChangeSimOptions{}, &rng);
  ASSERT_TRUE(change.ok());
  XmlDocument a = base.Clone();
  XmlDocument b = change->new_version.Clone();
  Result<Delta> delta = XyDiff(&a, &b);
  ASSERT_TRUE(delta.ok());
  const std::string delta_xml = SerializeDelta(*delta);

  for (int round = 0; round < 300; ++round) {
    std::string mutated = delta_xml;
    for (int m = 0; m < 3; ++m) {
      const size_t pos = rng.NextIndex(mutated.size());
      if (rng.NextBool(0.5)) {
        mutated[pos] = static_cast<char>('0' + rng.NextIndex(10));
      } else {
        mutated.erase(pos, 1 + rng.NextIndex(4));
      }
    }
    Result<Delta> reparsed = ParseDelta(mutated);
    if (!reparsed.ok()) continue;
    // If it still parses, applying must either work or fail cleanly.
    XmlDocument doc = base.Clone();
    const Status applied = ApplyDelta(*reparsed, &doc);
    // Either outcome is acceptable; the invariant checked is below.
    (void)applied;
    // And the document must still have a root either way.
    EXPECT_NE(doc.root(), nullptr);
  }
}

TEST(DeltaRobustness, ShuffledXidsAreRejectedCleanly) {
  // A delta aimed at a structurally identical document whose XIDs have
  // been permuted: every op must fail with Conflict/NotFound, not crash.
  XmlDocument a = MustParse("<r><x>one</x><y>two</y><z>three</z></r>");
  a.AssignInitialXids();
  XmlDocument b = MustParse("<r><y>two</y><x>one!</x></r>");
  XmlDocument a2 = a.Clone();
  Result<Delta> delta = XyDiff(&a2, &b);
  ASSERT_TRUE(delta.ok());
  ASSERT_FALSE(delta->empty());

  XmlDocument permuted = a.Clone();
  // Rotate all XIDs by one.
  std::vector<XmlNode*> nodes;
  permuted.root()->Visit([&](XmlNode* n) { nodes.push_back(n); });
  const Xid first = nodes.front()->xid();
  for (size_t i = 0; i + 1 < nodes.size(); ++i) {
    nodes[i]->set_xid(nodes[i + 1]->xid());
  }
  nodes.back()->set_xid(first);

  const Status applied = ApplyDelta(*delta, &permuted);
  EXPECT_FALSE(applied.ok());
  EXPECT_NE(permuted.root(), nullptr);
}

TEST(DeltaRobustness, ApplyToWrongVersionFailsWithVerification) {
  Rng rng(33);
  DocGenOptions gen;
  gen.target_bytes = 2048;
  XmlDocument base = GenerateDocument(&rng, gen);
  base.AssignInitialXids();
  Result<SimulatedChange> c1 = SimulateChanges(base, ChangeSimOptions{}, &rng);
  ASSERT_TRUE(c1.ok());
  // Diff against version 2, apply to (stale) version... 2-again-changed.
  Result<SimulatedChange> c2 =
      SimulateChanges(c1->new_version, ChangeSimOptions{}, &rng);
  ASSERT_TRUE(c2.ok());

  XmlDocument v2 = c1->new_version.Clone();
  XmlDocument v3 = c2->new_version.Clone();
  Result<Delta> delta = XyDiff(&v2, &v3);
  ASSERT_TRUE(delta.ok());
  ASSERT_FALSE(delta->empty());

  // Applying the v2->v3 delta to v1 must not silently "succeed".
  XmlDocument stale = base.Clone();
  const Status applied = ApplyDelta(*delta, &stale);
  EXPECT_FALSE(applied.ok());
}

TEST(DiffRobustness, AdversarialDocumentShapes) {
  // Deep chains, wide fanouts, repeated identical subtrees, same-label
  // forests: the diff must stay correct on all of them.
  const std::pair<std::string, std::string> cases[] = {
      // Deep chain relabel at the bottom.
      {"<a><a><a><a><a>x</a></a></a></a></a>",
       "<a><a><a><a><a>y</a></a></a></a></a>"},
      // Wide identical children (ambiguous candidates everywhere).
      {"<r><p>t</p><p>t</p><p>t</p><p>t</p><p>t</p></r>",
       "<r><p>t</p><p>t</p><p>t</p><p>t</p></r>"},
      // Repeated subtrees with one changed deep inside.
      {"<r><s><q>k</q></s><s><q>k</q></s><s><q>k</q></s></r>",
       "<r><s><q>k</q></s><s><q>K</q></s><s><q>k</q></s></r>"},
      // Total reversal.
      {"<r><a>1</a><b>2</b><c>3</c><d>4</d></r>",
       "<r><d>4</d><c>3</c><b>2</b><a>1</a></r>"},
      // Everything into one new wrapper.
      {"<r><a>1</a><b>2</b><c>3</c></r>",
       "<r><wrap><a>1</a><b>2</b><c>3</c></wrap></r>"},
  };
  for (const auto& [old_xml, new_xml] : cases) {
    XmlDocument a = MustParse(old_xml);
    a.AssignInitialXids();
    XmlDocument b = MustParse(new_xml);
    Result<Delta> delta = XyDiff(&a, &b);
    ASSERT_TRUE(delta.ok()) << old_xml;
    XY_EXPECT_OK(ValidateDelta(*delta));
    XmlDocument patched = a.Clone();
    XY_ASSERT_OK(ApplyDelta(*delta, &patched));
    EXPECT_TRUE(DocsEqualWithXids(patched, b)) << old_xml;
  }
}

TEST(DiffRobustness, HugeFlatSiblingList) {
  // 2000 same-label siblings with a few edits: stresses the LOPS path
  // and the candidate index caps.
  std::string old_xml = "<r>";
  std::string new_xml = "<r>";
  for (int i = 0; i < 2000; ++i) {
    const std::string item = "<i>" + std::to_string(i) + "</i>";
    old_xml += item;
    if (i == 700) continue;                      // Deleted.
    if (i == 900) new_xml += "<i>fresh</i>";     // Inserted before 900.
    new_xml += item;
  }
  old_xml += "</r>";
  new_xml += "</r>";
  XmlDocument a = MustParse(old_xml);
  a.AssignInitialXids();
  XmlDocument b = MustParse(new_xml);
  Result<Delta> delta = XyDiff(&a, &b);
  ASSERT_TRUE(delta.ok());
  XmlDocument patched = a.Clone();
  XY_ASSERT_OK(ApplyDelta(*delta, &patched));
  EXPECT_TRUE(DocsEqualWithXids(patched, b));
  // And the script is small, not a wholesale rewrite.
  EXPECT_LT(delta->operation_count(), 50u);
}

}  // namespace
}  // namespace xydiff
