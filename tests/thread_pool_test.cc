// Unit tests for the work-stealing pool and the bounded MPMC queue the
// warehouse pipeline is built on. The pool's contract: every submitted
// task runs exactly once, Wait() returns only after the last task (and
// every task it spawned transitively) finished, and tasks may Submit
// from inside a worker without deadlock. The queue's contract: FIFO per
// producer, capacity is a hard bound, Close() wakes blocked consumers,
// peak_depth() records the high-water mark.

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/thread_pool.h"

namespace xydiff {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kTasks = 1000;
  std::vector<std::atomic<int>> ran(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&ran, i] { ran[i].fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(ran[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 5050);
}

// Tasks submitted from inside a task (the pipeline's "push downstream"
// shape) must run before Wait() returns, however deep the chain.
TEST(ThreadPoolTest, NestedSubmitsCompleteBeforeWait) {
  ThreadPool pool(3);
  std::atomic<int> depth_sum{0};
  std::function<void(int)> spawn = [&](int depth) {
    depth_sum.fetch_add(1, std::memory_order_relaxed);
    if (depth < 6) {
      pool.Submit([&spawn, depth] { spawn(depth + 1); });
      pool.Submit([&spawn, depth] { spawn(depth + 1); });
    }
  };
  pool.Submit([&spawn] { spawn(0); });
  pool.Wait();
  // A full binary tree of depth 6: 2^7 - 1 nodes.
  EXPECT_EQ(depth_sum.load(), 127);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(4);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, ThreadCountIsClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(BoundedQueueTest, FifoWithinCapacity) {
  BoundedQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(queue.TryPush(int{i}));
  }
  EXPECT_FALSE(queue.TryPush(99));  // Capacity is a hard bound.
  for (int i = 0; i < 4; ++i) {
    std::optional<int> value = queue.TryPop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, i);
  }
  EXPECT_FALSE(queue.TryPop().has_value());
}

TEST(BoundedQueueTest, PeakDepthRecordsHighWaterMark) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) queue.TryPush(int{i});
  for (int i = 0; i < 5; ++i) queue.TryPop();
  queue.TryPush(1);
  EXPECT_EQ(queue.peak_depth(), 5u);
}

TEST(BoundedQueueTest, CapacityClampsToAtLeastOne) {
  BoundedQueue<int> queue(0);
  EXPECT_TRUE(queue.TryPush(7));
  EXPECT_FALSE(queue.TryPush(8));
  std::optional<int> value = queue.TryPop();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, 7);
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(2);
  std::atomic<bool> popped_after_close{false};
  std::thread consumer([&] {
    // Blocking Pop returns nullopt once the queue is closed and drained.
    while (queue.Pop().has_value()) {
    }
    popped_after_close.store(true);
  });
  queue.Push(1);
  queue.Push(2);
  queue.Close();
  consumer.join();
  EXPECT_TRUE(popped_after_close.load());
}

TEST(BoundedQueueTest, BlockedPushResumesWhenConsumerDrains) {
  // Regression for the CondVar while-loop rewrite (PR 4): a producer
  // blocked on a full queue must wake when a slot frees, not only on
  // Close(). Capacity 1 forces the second Push to block.
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(queue.Push(2));
    second_pushed.store(true);
  });
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> push_rejected{false};
  std::thread producer([&] {
    // Blocks on the full queue until Close(), then must report failure.
    push_rejected.store(!queue.Push(2));
  });
  queue.Close();
  producer.join();
  EXPECT_TRUE(push_rejected.load());
  // The item enqueued before the close is still drainable.
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, ManyProducersManyConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> queue(8);
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue.Push(p * kPerProducer + i);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (std::optional<int> value = queue.Pop()) {
        sum.fetch_add(*value, std::memory_order_relaxed);
        popped.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  queue.Close();
  for (size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

  constexpr int kTotal = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), kTotal);
  // Sum of 0..kTotal-1.
  EXPECT_EQ(sum.load(), static_cast<long>(kTotal) * (kTotal - 1) / 2);
  EXPECT_LE(queue.peak_depth(), 8u);
}

TEST(BoundedQueueTest, CancelWakesBlockedConsumerWithoutDraining) {
  // Regression for the original shutdown semantics: a consumer blocked
  // in Pop could only be released by Close(), which forced it to drain.
  // Cancel() must wake it exactly once, returning nullopt and leaving
  // queued items alone. Run under TSan (tools/run_tsan_tests.sh) to
  // cover the wakeup race itself.
  BoundedQueue<int> queue(4);
  constexpr int kConsumers = 3;
  std::atomic<int> woke_empty{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      if (!queue.Pop().has_value()) {
        woke_empty.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Give every consumer a chance to block on the empty queue, then pull
  // the plug. (A consumer that has not blocked yet still sees cancelled_
  // on entry — either order must work.)
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Cancel();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(woke_empty.load(), kConsumers);
  EXPECT_TRUE(queue.cancelled());
  // Pop after Cancel returns immediately, no blocking, no draining.
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, CancelWakesBlockedProducerExactlyOnce) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<int> push_rejected{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&] {
      // Blocks on the full queue until Cancel(), then reports failure.
      if (!queue.Push(2)) push_rejected.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Cancel();
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(push_rejected.load(), 3);
  // The cancelled queue refuses late arrivals on both sides...
  EXPECT_FALSE(queue.Push(3));
  EXPECT_EQ(queue.Pop(), std::nullopt);
  // ...but TryPop still drains the abandoned item for cleanup.
  EXPECT_EQ(queue.TryPop(), std::optional<int>(1));
  EXPECT_EQ(queue.TryPop(), std::nullopt);
}

TEST(BoundedQueueTest, CancelDoesNotLetPopStartWorkOnStaleItems) {
  // Items queued before Cancel must NOT come out of blocking Pop — a
  // cancelled consumer would otherwise start work the caller abandoned.
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  queue.Cancel();
  EXPECT_EQ(queue.Pop(), std::nullopt);
  EXPECT_EQ(queue.Pop(), std::nullopt);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedQueueTest, CancelIsIdempotentAndImpliesClose) {
  BoundedQueue<int> queue(2);
  queue.Cancel();
  queue.Cancel();
  EXPECT_TRUE(queue.cancelled());
  EXPECT_FALSE(queue.Push(1));
  EXPECT_FALSE(queue.TryPush(1));
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, CancelWhileBothSidesBlockedReleasesEveryone) {
  // The mixed case the fix exists for: producers blocked on a full
  // queue AND (after a cancel) consumers arriving — everybody returns,
  // nobody deadlocks, nobody busy-loops.
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(0));
  std::atomic<int> released{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&] {
      // May succeed (a racing Pop freed the slot before Cancel) or be
      // refused — returning at all is the release under test.
      queue.Push(1);
      released.fetch_add(1);
    });
  }
  threads.emplace_back([&] {
    // Full queue: this Pop could legitimately pop the pre-cancel item
    // (races with Cancel) or see the cancellation — both are releases.
    queue.Pop();
    released.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Cancel();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(released.load(), 3);
}

TEST(PipelineStatsTest, ToStringListsEveryStage) {
  PipelineStats stats;
  stats.stages.push_back({"parse", 100, 2, 0, 7, 0.25});
  stats.stages.push_back({"diff", 98, 0, 5, 3, 0.0});
  stats.peak_in_flight = 12;
  stats.degraded_slots = 4;
  stats.wall_seconds = 1.5;
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("parse"), std::string::npos);
  EXPECT_NE(text.find("diff"), std::string::npos);
  EXPECT_NE(text.find("100"), std::string::npos);
  EXPECT_NE(text.find("retries"), std::string::npos);
  EXPECT_NE(text.find("degraded slots 4"), std::string::npos);
}

}  // namespace
}  // namespace xydiff
