// Edge cases of the delta algebra (§4's completed deltas) that the
// randomized sweeps are unlikely to hit: identity elements (the empty
// delta under invert and compose), degenerate operands (a delta applied
// to a document with no root), the virtual super-root's protection
// against moves, and composition of deltas that crossed the binary
// codec — storage is where composed chains actually come from, so the
// algebra must hold on decoded deltas, not just freshly-diffed ones.

#include <string>

#include "core/buld.h"
#include "delta/apply.h"
#include "delta/codec.h"
#include "delta/compose.h"
#include "delta/delta.h"
#include "delta/invert.h"
#include "delta/validate.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "xml/serializer.h"

namespace xydiff {
namespace {

std::string WithXids(const XmlDocument& doc) {
  SerializeOptions options;
  options.emit_xids = true;
  return SerializeDocument(doc, options);
}

XmlDocument ParseWithXids(std::string_view text) {
  XmlDocument doc = MustParse(text);
  doc.AssignInitialXids();
  return doc;
}

TEST(DeltaAlgebraEdgeTest, EmptyDeltaIsTheIdentityUnderInvert) {
  const Delta empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(InvertDelta(empty).empty());
  XY_EXPECT_OK(ValidateDelta(empty));
}

TEST(DeltaAlgebraEdgeTest, EmptyDeltaAppliesAsANoOp) {
  XmlDocument doc = ParseWithXids("<a><b>x</b><c>y</c></a>");
  const std::string before = WithXids(doc);
  Delta empty;
  empty.set_old_next_xid(doc.next_xid());
  empty.set_new_next_xid(doc.next_xid());
  XY_ASSERT_OK(ApplyDelta(empty, &doc));
  EXPECT_EQ(WithXids(doc), before);
}

TEST(DeltaAlgebraEdgeTest, EmptyDeltaIsTheIdentityUnderCompose) {
  XmlDocument base = ParseWithXids("<a><b>x</b><c>y</c></a>");
  XmlDocument changed = MustParse("<a><b>z</b><c>y</c><d/></a>");
  Result<Delta> d = XyDiff(&base, &changed);
  XY_ASSERT_OK(d.status());
  ASSERT_FALSE(d->empty());

  // empty ∘ empty = empty.
  Delta empty1, empty2;
  empty1.set_old_next_xid(base.next_xid());
  empty1.set_new_next_xid(base.next_xid());
  empty2 = empty1.Clone();
  Result<Delta> ee = ComposeDeltas(base, empty1, empty2);
  XY_ASSERT_OK(ee.status());
  EXPECT_TRUE(ee->empty());

  // empty ∘ d and d ∘ empty are both apply-equivalent to d.
  Delta pre_identity;
  pre_identity.set_old_next_xid(base.next_xid());
  pre_identity.set_new_next_xid(base.next_xid());
  Result<Delta> ed = ComposeDeltas(base, pre_identity, *d);
  XY_ASSERT_OK(ed.status());
  Delta post_identity;
  post_identity.set_old_next_xid(d->new_next_xid());
  post_identity.set_new_next_xid(d->new_next_xid());
  Result<Delta> de = ComposeDeltas(base, *d, post_identity);
  XY_ASSERT_OK(de.status());
  for (const Delta* composed : {&*ed, &*de}) {
    XmlDocument work = base.Clone();
    XY_ASSERT_OK(ApplyDelta(*composed, &work));
    EXPECT_EQ(WithXids(work), WithXids(changed));
  }

  // Cancellation: d ∘ Invert(d) composes to the empty delta.
  Result<Delta> cancelled = ComposeDeltas(base, *d, InvertDelta(*d));
  XY_ASSERT_OK(cancelled.status());
  EXPECT_TRUE(cancelled->empty());
}

TEST(DeltaAlgebraEdgeTest, DeltaOntoEmptyDocumentIsRejected) {
  XmlDocument base = ParseWithXids("<a><b>x</b></a>");
  XmlDocument changed = MustParse("<a><b>y</b></a>");
  Result<Delta> d = XyDiff(&base, &changed);
  XY_ASSERT_OK(d.status());

  XmlDocument empty_doc;  // No root: nothing to address ops against.
  const Status status = ApplyDelta(*d, &empty_doc);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
  EXPECT_NE(status.message().find("empty document"), std::string::npos)
      << status.ToString();
  // The inverse direction hits the same guard — no partial application.
  EXPECT_FALSE(ApplyDeltaInverse(*d, &empty_doc).ok());
  EXPECT_EQ(empty_doc.root(), nullptr);
}

TEST(DeltaAlgebraEdgeTest, MoveOfTheVirtualRootIsRejected) {
  Delta d;
  MoveOp move;
  move.xid = kNoXid;  // XID 0 is the virtual super-root.
  move.from_parent = 1;
  move.from_pos = 1;
  move.to_parent = 1;
  move.to_pos = 2;
  d.moves().push_back(move);

  const Status status = ValidateDelta(d);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption) << status.ToString();
  EXPECT_NE(status.message().find("virtual root"), std::string::npos)
      << status.ToString();

  // The same structure with a real XID is structurally fine.
  d.moves()[0].xid = 5;
  d.set_old_next_xid(10);
  d.set_new_next_xid(10);
  XY_EXPECT_OK(ValidateDelta(d));
}

// Composition across the storage boundary: encode both deltas through
// the binary codec, decode them back, compose the *decoded* deltas, and
// the composite must still take v1 to v3 (XIDs included). This is the
// path the version store's skip-delta index exercises for real.
TEST(DeltaAlgebraEdgeTest, ComposeHoldsAcrossTheCodecBoundary) {
  XmlDocument v1 = ParseWithXids(
      "<root><item id=\"1\">alpha</item><item id=\"2\">beta</item></root>");
  XmlDocument v2 = MustParse(
      "<root><item id=\"2\">beta</item><item id=\"1\">gamma</item>"
      "<extra/></root>");
  XmlDocument v3 = MustParse(
      "<root><item id=\"1\">gamma</item><note>new</note></root>");

  Result<Delta> d1 = XyDiff(&v1, &v2);
  XY_ASSERT_OK(d1.status());
  Result<Delta> d2 = XyDiff(&v2, &v3);  // v2 now carries d1's XIDs.
  XY_ASSERT_OK(d2.status());

  Result<Delta> decoded1 = DecodeDeltaBinary(EncodeDeltaBinary(*d1));
  XY_ASSERT_OK(decoded1.status());
  Result<Delta> decoded2 = DecodeDeltaBinary(EncodeDeltaBinary(*d2));
  XY_ASSERT_OK(decoded2.status());

  Result<Delta> composed = ComposeDeltas(v1, *decoded1, *decoded2);
  XY_ASSERT_OK(composed.status());
  XY_ASSERT_OK(ValidateDelta(*composed));

  XmlDocument work = v1.Clone();
  XY_ASSERT_OK(ApplyDelta(*composed, &work));
  EXPECT_EQ(WithXids(work), WithXids(v3));

  // And the composite itself survives another codec round-trip.
  Result<Delta> recoded = DecodeDeltaBinary(EncodeDeltaBinary(*composed));
  XY_ASSERT_OK(recoded.status());
  XmlDocument work2 = v1.Clone();
  XY_ASSERT_OK(ApplyDelta(*recoded, &work2));
  EXPECT_EQ(WithXids(work2), WithXids(v3));
}

}  // namespace
}  // namespace xydiff
