#include "core/buld.h"

#include "delta/apply.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xydiff {
namespace {

TEST(BuldTest, EmptyDeltaForIdenticalDocuments) {
  Result<Delta> delta =
      XyDiffText("<a><b>x</b></a>", "<a><b>x</b></a>");
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
  EXPECT_EQ(delta->operation_count(), 0u);
}

TEST(BuldTest, SingleTextUpdate) {
  Result<Delta> delta = XyDiffText("<p><price>$799</price></p>",
                                   "<p><price>$699</price></p>");
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->updates().size(), 1u);
  EXPECT_EQ(delta->updates()[0].old_value, "$799");
  EXPECT_EQ(delta->updates()[0].new_value, "$699");
  EXPECT_TRUE(delta->deletes().empty());
  EXPECT_TRUE(delta->inserts().empty());
  EXPECT_TRUE(delta->moves().empty());
}

TEST(BuldTest, SubtreeInsertion) {
  Result<Delta> delta = XyDiffText(
      "<cat><item><n>one</n></item></cat>",
      "<cat><item><n>one</n></item><item><n>two</n></item></cat>");
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->inserts().size(), 1u);
  EXPECT_TRUE(delta->deletes().empty());
  EXPECT_EQ(delta->inserts()[0].pos, 2u);
  EXPECT_EQ(delta->inserts()[0].subtree->label(), "item");
  // The inserted subtree has 3 nodes; nothing else should be reported.
  EXPECT_EQ(delta->snapshot_node_count(), 3u);
}

TEST(BuldTest, SubtreeDeletion) {
  Result<Delta> delta = XyDiffText(
      "<cat><item><n>one</n></item><item><n>two</n></item></cat>",
      "<cat><item><n>two</n></item></cat>");
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->deletes().size(), 1u);
  EXPECT_TRUE(delta->inserts().empty());
  EXPECT_EQ(delta->deletes()[0].pos, 1u);
  ASSERT_NE(delta->deletes()[0].subtree, nullptr);
  EXPECT_EQ(delta->deletes()[0].subtree->child(0)->child(0)->text(), "one");
}

TEST(BuldTest, MoveDetectedAcrossParents) {
  // A heavy subtree relocates; the diff must emit a move, not
  // delete+insert (§4: "a key difference with most previous work").
  const std::string_view old_xml =
      "<doc><left><big><a>aaaa aaaa aaaa</a><b>bbbb bbbb bbbb</b>"
      "<c>cccc cccc cccc</c></big></left><right/></doc>";
  const std::string_view new_xml =
      "<doc><left/><right><big><a>aaaa aaaa aaaa</a><b>bbbb bbbb bbbb</b>"
      "<c>cccc cccc cccc</c></big></right></doc>";
  Result<Delta> delta = XyDiffText(old_xml, new_xml);
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->moves().size(), 1u);
  EXPECT_TRUE(delta->deletes().empty());
  EXPECT_TRUE(delta->inserts().empty());
}

TEST(BuldTest, SiblingPermutationYieldsMinimalMoves) {
  // Permuting one child out of five: exactly one move (Figure 3).
  Result<Delta> delta = XyDiffText(
      "<r><a>a1</a><b>b1</b><c>c1</c><d>d1</d><e>e1</e></r>",
      "<r><b>b1</b><c>c1</c><d>d1</d><e>e1</e><a>a1</a></r>");
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->moves().size(), 1u);
  EXPECT_TRUE(delta->deletes().empty());
  EXPECT_TRUE(delta->inserts().empty());
}

TEST(BuldTest, MoveDisabledFallsBackToDeleteInsert) {
  DiffOptions options;
  options.detect_moves = false;
  XmlDocument a = MustParse(
      "<r><x><p>payload payload</p></x><y/></r>");
  a.AssignInitialXids();
  XmlDocument b = MustParse(
      "<r><x/><y><p>payload payload</p></y></r>");
  Result<Delta> delta = XyDiff(&a, &b, options);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->moves().empty());
  EXPECT_FALSE(delta->deletes().empty());
  EXPECT_FALSE(delta->inserts().empty());
  // Still correct.
  XmlDocument patched = a.Clone();
  XY_ASSERT_OK(ApplyDelta(*delta, &patched));
  EXPECT_TRUE(DocsEqualWithXids(patched, b));
}

TEST(BuldTest, AttributeChanges) {
  Result<Delta> delta = XyDiffText(
      R"(<r><p a="1" b="2" c="3">t</p></r>)",
      R"(<r><p a="1" b="20" d="4">t</p></r>)");
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->attribute_ops().size(), 3u);
  int inserts = 0;
  int deletes = 0;
  int updates = 0;
  for (const AttributeOp& op : delta->attribute_ops()) {
    switch (op.kind) {
      case AttributeOpKind::kInsert:
        ++inserts;
        EXPECT_EQ(op.name, "d");
        break;
      case AttributeOpKind::kDelete:
        ++deletes;
        EXPECT_EQ(op.name, "c");
        break;
      case AttributeOpKind::kUpdate:
        ++updates;
        EXPECT_EQ(op.name, "b");
        EXPECT_EQ(op.old_value, "2");
        EXPECT_EQ(op.new_value, "20");
        break;
    }
  }
  EXPECT_EQ(inserts, 1);
  EXPECT_EQ(deletes, 1);
  EXPECT_EQ(updates, 1);
}

TEST(BuldTest, XidAssignmentInheritsAndAllocates) {
  XmlDocument a = MustParse("<r><keep>data</keep></r>");
  a.AssignInitialXids();  // text=1 keep=2 r=3, next=4.
  XmlDocument b = MustParse("<r><keep>data</keep><fresh/></r>");
  Result<Delta> delta = XyDiff(&a, &b);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(b.root()->xid(), 3u);
  EXPECT_EQ(b.root()->child(0)->xid(), 2u);
  EXPECT_EQ(b.root()->child(0)->child(0)->xid(), 1u);
  EXPECT_EQ(b.root()->child(1)->xid(), 4u);  // Fresh.
  EXPECT_EQ(b.next_xid(), 5u);
  EXPECT_EQ(delta->old_next_xid(), 4u);
  EXPECT_EQ(delta->new_next_xid(), 5u);
}

TEST(BuldTest, PartiallyAssignedXidsRejected) {
  XmlDocument a = MustParse("<r><x/></r>");
  a.root()->set_xid(5);  // Root only.
  XmlDocument b = MustParse("<r/>");
  Result<Delta> delta = XyDiff(&a, &b);
  ASSERT_FALSE(delta.ok());
  EXPECT_EQ(delta.status().code(), StatusCode::kInvalidArgument);
}

TEST(BuldTest, EmptyDocumentsRejected) {
  XmlDocument a;
  XmlDocument b = MustParse("<r/>");
  EXPECT_FALSE(XyDiff(&a, &b).ok());
  EXPECT_FALSE(XyDiff(&b, &a).ok());
}

TEST(BuldTest, StatsArePopulated) {
  XmlDocument a = MustParse("<r><x>one</x><y>two</y></r>");
  a.AssignInitialXids();
  XmlDocument b = MustParse("<r><x>one</x><y>three</y></r>");
  DiffStats stats;
  Result<Delta> delta = XyDiff(&a, &b, DiffOptions{}, &stats);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(stats.nodes_old, 5u);
  EXPECT_EQ(stats.nodes_new, 5u);
  EXPECT_GE(stats.matched_nodes, 4u);
  EXPECT_GE(stats.total_seconds(), 0.0);
  // Instrumentation: every new-document node passes through the queue at
  // most once plus re-pushes; at least the root was popped.
  EXPECT_GE(stats.queue_pops, 1u);
  EXPECT_GE(stats.subtree_matches, 1u);  // "one" subtree is identical.
}

TEST(BuldTest, InstrumentationAccountsForMatchSources) {
  // A document where phase 3 matches the identical heavy subtree,
  // ancestors climb, and phase 4 finishes the changed text.
  XmlDocument a = MustParse(
      "<r><sec><big>identical heavy payload text</big><small>x</small>"
      "</sec></r>");
  a.AssignInitialXids();
  XmlDocument b = MustParse(
      "<r><sec><big>identical heavy payload text</big><small>y</small>"
      "</sec></r>");
  DiffStats stats;
  Result<Delta> delta = XyDiff(&a, &b, DiffOptions{}, &stats);
  ASSERT_TRUE(delta.ok());
  EXPECT_GE(stats.subtree_matches, 1u);
  EXPECT_GE(stats.ancestor_matches, 1u);     // sec/r climbed.
  EXPECT_GE(stats.propagation_matches, 1u);  // small + its text.
  EXPECT_EQ(stats.matched_nodes, stats.nodes_new - 0u);  // All matched.
}

TEST(BuldTest, IdAttributesDriveMatching) {
  const std::string dtd =
      "<!DOCTYPE cat [<!ATTLIST product ref ID #REQUIRED>]>";
  // Two products with identical content but different IDs swap places
  // AND their contents swap: ID matching must pair by ref, making the
  // texts appear updated rather than the products moved.
  XmlDocument a = MustParse(
      dtd +
      "<cat><product ref=\"p1\"><v>alpha</v></product>"
      "<product ref=\"p2\"><v>beta</v></product></cat>");
  a.AssignInitialXids();
  XmlDocument b = MustParse(
      dtd +
      "<cat><product ref=\"p1\"><v>beta</v></product>"
      "<product ref=\"p2\"><v>alpha</v></product></cat>");
  Result<Delta> with_ids = XyDiff(&a, &b);
  ASSERT_TRUE(with_ids.ok());
  // With ID matching, products stay in place; their texts swap -> either
  // two updates or text moves, but NO product-level move.
  for (const MoveOp& move : with_ids->moves()) {
    XmlDocument check = a.Clone();
    auto index = check.BuildXidIndex();
    ASSERT_TRUE(index.count(move.xid));
    EXPECT_TRUE(index[move.xid]->is_text())
        << "an element moved despite ID pinning";
  }
}

TEST(BuldTest, TextOnlyDocuments) {
  Result<Delta> delta = XyDiffText("<t>only text</t>", "<t>other text</t>");
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->updates().size(), 1u);
}

}  // namespace
}  // namespace xydiff
