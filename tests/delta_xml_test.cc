#include "delta/delta_xml.h"

#include "core/buld.h"
#include "delta/apply.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "xml/path.h"

namespace xydiff {
namespace {

Delta SampleDelta() {
  XmlDocument a = MustParse(
      "<shop><item k=\"1\">apple</item><item>pear</item>"
      "<box><item>plum</item></box></shop>");
  a.AssignInitialXids();
  XmlDocument b = MustParse(
      "<shop><box><item>plum</item><item>apple!</item></box>"
      "<item k=\"2\">apple</item></shop>");
  Result<Delta> delta = XyDiff(&a, &b);
  EXPECT_TRUE(delta.ok());
  return std::move(delta.value());
}

TEST(DeltaXmlTest, RoundTripPreservesEverything) {
  const Delta delta = SampleDelta();
  const std::string xml = SerializeDelta(delta);
  Result<Delta> reparsed = ParseDelta(xml);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << xml;

  EXPECT_EQ(reparsed->deletes().size(), delta.deletes().size());
  EXPECT_EQ(reparsed->inserts().size(), delta.inserts().size());
  EXPECT_EQ(reparsed->moves().size(), delta.moves().size());
  EXPECT_EQ(reparsed->updates().size(), delta.updates().size());
  EXPECT_EQ(reparsed->attribute_ops().size(), delta.attribute_ops().size());
  EXPECT_EQ(reparsed->old_next_xid(), delta.old_next_xid());
  EXPECT_EQ(reparsed->new_next_xid(), delta.new_next_xid());
  // Serialization is a fixpoint.
  EXPECT_EQ(SerializeDelta(*reparsed), xml);
}

TEST(DeltaXmlTest, DeltaIsItselfParsableXml) {
  // §2: deltas are XML documents and can be queried like any other.
  const Delta delta = SampleDelta();
  XmlDocument doc = MustParse(SerializeDelta(delta));
  EXPECT_EQ(doc.root()->label(), "xy:delta");
}

TEST(DeltaXmlTest, DeltasAreQueryableWithPaths) {
  // §2's claim made concrete: query the delta document with the
  // library's own path engine — e.g. "which moves happened?" or "which
  // Products were inserted?".
  const Delta delta = SampleDelta();
  XmlDocument doc = MustParse(SerializeDelta(delta));

  Result<XmlPath> moves = XmlPath::Parse("/xy:delta/xy:move");
  ASSERT_TRUE(moves.ok());
  EXPECT_EQ(moves->FindAll(*doc.root()).size(), delta.moves().size());

  Result<XmlPath> inserted_items = XmlPath::Parse("//xy:insert//item");
  ASSERT_TRUE(inserted_items.ok());
  size_t items_in_inserts = 0;
  for (const InsertOp& op : delta.inserts()) {
    op.subtree->Visit([&](const XmlNode* n) {
      if (n->is_element() && n->label() == "item") ++items_in_inserts;
    });
  }
  EXPECT_EQ(inserted_items->FindAll(*doc.root()).size(), items_in_inserts);
}

TEST(DeltaXmlTest, XidMapAttributeOnSnapshots) {
  XmlDocument a = MustParse("<r><gone><x>1</x><y>2</y></gone></r>");
  a.AssignInitialXids();
  XmlDocument b = MustParse("<r/>");
  Result<Delta> delta = XyDiff(&a, &b);
  ASSERT_TRUE(delta.ok());
  const std::string xml = SerializeDelta(*delta);
  // Subtree postfix XIDs: x-text=1 x=2 y-text=3 y=4 gone=5 -> "(1-5)".
  EXPECT_NE(xml.find("xidMap=\"(1-5)\""), std::string::npos) << xml;
}

TEST(DeltaXmlTest, UpdateValuesWithSpecialCharacters) {
  Delta delta;
  delta.updates().push_back(UpdateOp{3, "a<b>&c", "\"quoted\" & 'apos'"});
  delta.set_old_next_xid(5);
  delta.set_new_next_xid(5);
  Result<Delta> reparsed = ParseDelta(SerializeDelta(delta));
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->updates().size(), 1u);
  EXPECT_EQ(reparsed->updates()[0].old_value, "a<b>&c");
  EXPECT_EQ(reparsed->updates()[0].new_value, "\"quoted\" & 'apos'");
}

TEST(DeltaXmlTest, EmptyUpdateValues) {
  Delta delta;
  delta.updates().push_back(UpdateOp{3, "", "now set"});
  delta.set_old_next_xid(5);
  delta.set_new_next_xid(5);
  Result<Delta> reparsed = ParseDelta(SerializeDelta(delta));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->updates()[0].old_value, "");
  EXPECT_EQ(reparsed->updates()[0].new_value, "now set");
}

TEST(DeltaXmlTest, TextNodeSnapshot) {
  // A deleted bare text node round-trips as an op with a text child.
  Delta delta;
  auto text = XmlNode::Text("  spaced  ");
  text->set_xid(7);
  delta.deletes().emplace_back(7, 9, 2, std::move(text));
  delta.set_old_next_xid(10);
  delta.set_new_next_xid(10);
  Result<Delta> reparsed = ParseDelta(SerializeDelta(delta));
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->deletes().size(), 1u);
  ASSERT_TRUE(reparsed->deletes()[0].subtree->is_text());
  EXPECT_EQ(reparsed->deletes()[0].subtree->text(), "  spaced  ");
  EXPECT_EQ(reparsed->deletes()[0].subtree->xid(), 7u);
}

TEST(DeltaXmlTest, AppliedAfterRoundTrip) {
  XmlDocument a = MustParse(
      "<shop><item k=\"1\">apple</item><item>pear</item>"
      "<box><item>plum</item></box></shop>");
  a.AssignInitialXids();
  XmlDocument b = MustParse(
      "<shop><box><item>plum</item><item>apple!</item></box>"
      "<item k=\"2\">apple</item></shop>");
  XmlDocument a2 = a.Clone();
  Result<Delta> delta = XyDiff(&a2, &b);
  ASSERT_TRUE(delta.ok());
  Result<Delta> reparsed = ParseDelta(SerializeDelta(*delta));
  ASSERT_TRUE(reparsed.ok());
  XmlDocument patched = a.Clone();
  XY_ASSERT_OK(ApplyDelta(*reparsed, &patched));
  EXPECT_TRUE(DocsEqualWithXids(patched, b));
}

TEST(DeltaXmlTest, ParseErrors) {
  EXPECT_FALSE(ParseDelta("<notadelta/>").ok());
  EXPECT_FALSE(ParseDelta("not xml at all").ok());
  // Missing oldNextXid.
  EXPECT_FALSE(ParseDelta("<xy:delta newNextXid=\"1\"/>").ok());
  // Unknown operation.
  EXPECT_FALSE(ParseDelta("<xy:delta oldNextXid=\"1\" newNextXid=\"1\">"
                          "<xy:frobnicate/></xy:delta>")
                   .ok());
  // Delete without snapshot.
  EXPECT_FALSE(ParseDelta("<xy:delta oldNextXid=\"1\" newNextXid=\"1\">"
                          "<xy:delete xid=\"1\" parentXid=\"0\" pos=\"1\"/>"
                          "</xy:delta>")
                   .ok());
  // Move with a malformed number.
  EXPECT_FALSE(ParseDelta("<xy:delta oldNextXid=\"1\" newNextXid=\"1\">"
                          "<xy:move xid=\"x\" fromParent=\"1\" fromPos=\"1\""
                          " toParent=\"1\" toPos=\"1\"/></xy:delta>")
                   .ok());
  // Update missing old/new wrappers.
  EXPECT_FALSE(ParseDelta("<xy:delta oldNextXid=\"1\" newNextXid=\"1\">"
                          "<xy:update xid=\"1\"/></xy:delta>")
                   .ok());
}

TEST(DeltaXmlTest, PrettyFormParsesToo) {
  const Delta delta = SampleDelta();
  Result<Delta> reparsed = ParseDelta(SerializeDelta(delta, /*pretty=*/true));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->operation_count(), delta.operation_count());
}

TEST(DeltaXmlTest, EmptyDelta) {
  Delta delta;
  delta.set_old_next_xid(4);
  delta.set_new_next_xid(4);
  Result<Delta> reparsed = ParseDelta(SerializeDelta(delta));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(reparsed->empty());
  EXPECT_EQ(reparsed->old_next_xid(), 4u);
}

}  // namespace
}  // namespace xydiff
