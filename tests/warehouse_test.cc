#include "version/warehouse.h"

#include <filesystem>
#include <fstream>

#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "simulator/web_corpus.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "version/storage.h"

namespace xydiff {
namespace {

namespace fs = std::filesystem;

TEST(WarehouseTest, FirstIngestStoresVersionOne) {
  Warehouse warehouse;
  Result<Warehouse::IngestReport> report =
      warehouse.Ingest("http://a", MustParse("<doc><t>hello</t></doc>"));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->first_version);
  EXPECT_EQ(report->version, 1);
  EXPECT_EQ(report->operations, 0u);
  EXPECT_EQ(warehouse.document_count(), 1u);
  EXPECT_EQ(warehouse.version_count("http://a"), 1);
  EXPECT_EQ(warehouse.version_count("http://unknown"), 0);
}

TEST(WarehouseTest, SecondIngestRunsThePipeline) {
  Warehouse warehouse;
  XY_ASSERT_OK(warehouse.Subscribe("price", "//price", ChangeKind::kUpdate));
  ASSERT_TRUE(warehouse
                  .Ingest("http://a",
                          MustParse("<doc><price>10</price></doc>"))
                  .ok());
  Result<Warehouse::IngestReport> report = warehouse.Ingest(
      "http://a", MustParse("<doc><price>20</price></doc>"));
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->first_version);
  EXPECT_EQ(report->version, 2);
  EXPECT_GT(report->operations, 0u);
  ASSERT_EQ(report->alerts.size(), 1u);
  EXPECT_EQ(report->alerts[0].subscription_id, "price");
  // Statistics learned the change.
  EXPECT_EQ(warehouse.StatsForLabel("price").text_updated, 1u);
}

TEST(WarehouseTest, CheckoutHistoricalVersions) {
  Warehouse warehouse;
  ASSERT_TRUE(warehouse.Ingest("u", MustParse("<d><t>v1</t></d>")).ok());
  ASSERT_TRUE(warehouse.Ingest("u", MustParse("<d><t>v2</t></d>")).ok());
  ASSERT_TRUE(warehouse.Ingest("u", MustParse("<d><t>v3</t></d>")).ok());
  for (int v = 1; v <= 3; ++v) {
    Result<XmlDocument> doc = warehouse.Checkout("u", v);
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc->root()->child(0)->child(0)->text(),
              "v" + std::to_string(v));
  }
  EXPECT_FALSE(warehouse.Checkout("u", 4).ok());
  EXPECT_FALSE(warehouse.Checkout("nope", 1).ok());
}

TEST(WarehouseTest, SearchSpansDocumentsAndStaysFresh) {
  Warehouse warehouse;
  ASSERT_TRUE(
      warehouse.Ingest("a", MustParse("<d><t>shared needle</t></d>")).ok());
  ASSERT_TRUE(
      warehouse.Ingest("b", MustParse("<d><t>needle too</t></d>")).ok());
  ASSERT_TRUE(warehouse.Ingest("c", MustParse("<d><t>nothing</t></d>")).ok());
  EXPECT_EQ(warehouse.Search("needle").size(), 2u);
  // After an update removing the word, the index follows.
  ASSERT_TRUE(
      warehouse.Ingest("a", MustParse("<d><t>shared thread</t></d>")).ok());
  EXPECT_EQ(warehouse.Search("needle").size(), 1u);
  EXPECT_EQ(warehouse.Search("needle")[0].first, "b");
}

TEST(WarehouseTest, BatchIngestParallelMatchesSerial) {
  Rng rng(71);
  DocGenOptions gen;
  gen.target_bytes = 2048;

  // Build two identical crawls of 24 documents.
  std::vector<std::pair<std::string, XmlDocument>> crawl1;
  std::vector<std::pair<std::string, XmlDocument>> crawl1_copy;
  for (int i = 0; i < 24; ++i) {
    XmlDocument doc = GenerateDocument(&rng, gen);
    crawl1_copy.emplace_back("url" + std::to_string(i), doc.Clone());
    crawl1.emplace_back("url" + std::to_string(i), std::move(doc));
  }

  Warehouse parallel;
  auto reports = parallel.IngestBatch(std::move(crawl1), /*threads=*/8);
  ASSERT_EQ(reports.size(), 24u);
  for (const auto& r : reports) {
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->first_version);
  }
  Warehouse serial;
  for (auto& [url, doc] : crawl1_copy) {
    ASSERT_TRUE(serial.Ingest(url, std::move(doc)).ok());
  }
  EXPECT_EQ(parallel.document_count(), serial.document_count());
  EXPECT_EQ(parallel.urls(), serial.urls());
}

TEST(WarehouseTest, BatchSecondWeekWithChanges) {
  Rng rng(72);
  DocGenOptions gen;
  gen.target_bytes = 2048;
  Warehouse warehouse;
  XY_ASSERT_OK(warehouse.Subscribe("any", "//*"));

  std::vector<std::pair<std::string, XmlDocument>> week1;
  for (int i = 0; i < 12; ++i) {
    week1.emplace_back("u" + std::to_string(i), GenerateDocument(&rng, gen));
  }
  // Week 2 = simulated change of week 1.
  std::vector<std::pair<std::string, XmlDocument>> week2;
  for (auto& [url, doc] : week1) {
    XmlDocument with_xids = doc.Clone();
    with_xids.AssignInitialXids();
    Result<SimulatedChange> change =
        SimulateChanges(with_xids, WeeklyWebChangeProfile(), &rng);
    ASSERT_TRUE(change.ok());
    change->new_version.root()->Visit(
        [](XmlNode* n) { n->set_xid(kNoXid); });  // Fresh crawl, no XIDs.
    week2.emplace_back(url, std::move(change->new_version));
  }

  for (auto& r : warehouse.IngestBatch(std::move(week1), 6)) {
    ASSERT_TRUE(r.ok());
  }
  size_t total_ops = 0;
  for (auto& r : warehouse.IngestBatch(std::move(week2), 6)) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->version, 2);
    total_ops += r->operations;
  }
  EXPECT_GT(total_ops, 0u);
  // Every document has two checkoutable versions.
  for (const std::string& url : warehouse.urls()) {
    EXPECT_TRUE(warehouse.Checkout(url, 1).ok());
    EXPECT_TRUE(warehouse.Checkout(url, 2).ok());
  }
}

TEST(WarehouseTest, DuplicateUrlsInBatchRejected) {
  Warehouse warehouse;
  std::vector<std::pair<std::string, XmlDocument>> batch;
  batch.emplace_back("same", MustParse("<a/>"));
  batch.emplace_back("same", MustParse("<b/>"));
  auto reports = warehouse.IngestBatch(std::move(batch), 2);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_TRUE(reports[0].ok());
  EXPECT_EQ(reports[1].status().code(), StatusCode::kInvalidArgument);
}

TEST(WarehouseTest, SaveAndLoadRoundTrip) {
  const fs::path dir = fs::temp_directory_path() /
                       ("xydiff_warehouse_test_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  Warehouse warehouse;
  ASSERT_TRUE(
      warehouse.Ingest("http://x/a", MustParse("<d><t>alpha one</t></d>"))
          .ok());
  ASSERT_TRUE(
      warehouse.Ingest("http://x/a", MustParse("<d><t>alpha two</t></d>"))
          .ok());
  ASSERT_TRUE(
      warehouse.Ingest("http://x/b", MustParse("<d><t>beta</t></d>")).ok());
  XY_ASSERT_OK(warehouse.Save(dir.string()));

  Result<std::unique_ptr<Warehouse>> loaded = Warehouse::Load(dir.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->document_count(), 2u);
  EXPECT_EQ((*loaded)->version_count("http://x/a"), 2);
  Result<XmlDocument> v1 = (*loaded)->Checkout("http://x/a", 1);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->root()->child(0)->child(0)->text(), "alpha one");
  // The rebuilt index works.
  EXPECT_EQ((*loaded)->Search("beta").size(), 1u);
  fs::remove_all(dir);
}

// Regression: a truncated stored document used to take down the whole
// Load (the parser error propagated as a hard failure). A warehouse of
// millions of crawled documents cannot lose everything to one bad file:
// Load must skip the corrupt repository, report it via `skipped`, and
// hand back every healthy document.
TEST(WarehouseTest, LoadSkipsTruncatedDocument) {
  const fs::path dir = fs::temp_directory_path() /
                       ("xydiff_truncated_test_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  Warehouse warehouse;
  ASSERT_TRUE(
      warehouse.Ingest("http://x/good", MustParse("<d><t>fine</t></d>")).ok());
  ASSERT_TRUE(
      warehouse.Ingest("http://x/bad", MustParse("<d><t>doomed</t></d>"))
          .ok());
  XY_ASSERT_OK(warehouse.Save(dir.string()));

  // Truncate the bad document's current file mid-tag, as out-of-band
  // damage (a bad disk, an overeager cleanup script) would. The store's
  // own crash-safe save can no longer produce this state by itself.
  fs::path bad_xml;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().find("bad") == std::string::npos) {
      continue;
    }
    for (const auto& file : fs::directory_iterator(entry.path())) {
      const std::string name = file.path().filename().string();
      if (name.rfind("current.", 0) == 0 &&
          name.size() > 4 && name.compare(name.size() - 4, 4, ".xml") == 0) {
        bad_xml = file.path();
      }
    }
  }
  ASSERT_FALSE(bad_xml.empty()) << "stored current file for http://x/bad";
  {
    std::ofstream out(bad_xml, std::ios::trunc);
    out << "<d><t>doo";
  }

  std::vector<std::string> skipped;
  Result<std::unique_ptr<Warehouse>> loaded =
      Warehouse::Load(dir.string(), DiffOptions{}, &skipped);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->document_count(), 1u);
  EXPECT_EQ((*loaded)->version_count("http://x/good"), 1);
  EXPECT_EQ((*loaded)->version_count("http://x/bad"), 0);
  ASSERT_EQ(skipped.size(), 1u);
  EXPECT_NE(skipped[0].find("bad"), std::string::npos) << skipped[0];

  // The caller may not care which documents were lost.
  Result<std::unique_ptr<Warehouse>> loaded_quietly =
      Warehouse::Load(dir.string());
  ASSERT_TRUE(loaded_quietly.ok()) << loaded_quietly.status().ToString();
  EXPECT_EQ((*loaded_quietly)->document_count(), 1u);
  fs::remove_all(dir);
}

// Regression for the group-commit flush path: FindDocument acquires a
// shard mutex, so it must run BEFORE the flusher starts taking the
// group's document locks (shard -> document is the order everywhere
// else). With slots smaller than the batch, several groups flush —
// each resolving and locking multiple documents — and every repository
// must land on disk loadable and current.
TEST(WarehouseTest, GroupCommitPersistsEveryDocument) {
  const fs::path dir = fs::temp_directory_path() /
                       ("xydiff_group_commit_test_" +
                        std::to_string(::getpid()));
  fs::remove_all(dir);

  Warehouse warehouse;
  constexpr int kDocs = 6;
  for (int i = 0; i < kDocs; ++i) {
    const std::string url = "doc" + std::to_string(i);
    ASSERT_TRUE(
        warehouse.Ingest(url, MustParse("<d><t>week one</t></d>")).ok());
  }

  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 4;
  pipeline.save_directory = dir.string();
  pipeline.group_commit_slots = 2;  // kDocs/2 separate group flushes.

  std::vector<Warehouse::DiffJob> jobs;
  for (int i = 0; i < kDocs; ++i) {
    jobs.push_back({"doc" + std::to_string(i),
                    "<d><t>week two #" + std::to_string(i) + "</t></d>"});
  }
  const auto results = warehouse.DiffBatch(std::move(jobs), pipeline);
  ASSERT_EQ(results.size(), static_cast<size_t>(kDocs));
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r->store_degraded);
  }

  // DiffBatch persists one repository directory per document (no
  // warehouse manifest); each must reopen cleanly at version 2.
  for (int i = 0; i < kDocs; ++i) {
    const std::string url = "doc" + std::to_string(i);
    RecoveryReport report;
    Result<VersionRepository> repo =
        LoadRepository((dir / url).string(), nullptr, &report);
    ASSERT_TRUE(repo.ok()) << url << ": " << repo.status().ToString();
    EXPECT_TRUE(report.clean) << report.ToString();
    ASSERT_EQ(repo->version_count(), 2) << url;
    Result<XmlDocument> head = repo->Checkout(2);
    ASSERT_TRUE(head.ok()) << head.status().ToString();
    EXPECT_EQ(head->root()->child(0)->child(0)->text(),
              "week two #" + std::to_string(i));
  }
  fs::remove_all(dir);
}

TEST(WarehouseTest, EmptyDocumentRejected) {
  Warehouse warehouse;
  EXPECT_EQ(warehouse.Ingest("u", XmlDocument()).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace xydiff
