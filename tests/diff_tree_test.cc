#include "delta/diff_tree.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xydiff {
namespace {

TEST(LabelTableTest, InternIsStable) {
  LabelTable table;
  const int32_t a = table.Intern("alpha");
  const int32_t b = table.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("alpha"), a);
  EXPECT_EQ(table.Name(a), "alpha");
  EXPECT_EQ(table.Find("beta"), b);
  EXPECT_EQ(table.Find("gamma"), -1);
  EXPECT_EQ(table.size(), 2u);
}

TEST(DiffTreeTest, StructureOfSimpleTree) {
  // <a><b>t</b><c/></a> — preorder: a=0, b=1, t=2, c=3.
  XmlDocument doc = MustParse("<a><b>t</b><c/></a>");
  LabelTable labels;
  DiffTree tree = DiffTree::Build(&doc, &labels);

  ASSERT_EQ(tree.size(), 4);
  EXPECT_EQ(tree.parent(0), kInvalidNode);
  EXPECT_EQ(tree.parent(1), 0);
  EXPECT_EQ(tree.parent(2), 1);
  EXPECT_EQ(tree.parent(3), 0);

  EXPECT_EQ(tree.child_count(0), 2);
  EXPECT_EQ(tree.child(0, 0), 1);
  EXPECT_EQ(tree.child(0, 1), 3);
  EXPECT_EQ(tree.child_count(1), 1);
  EXPECT_EQ(tree.child(1, 0), 2);
  EXPECT_EQ(tree.child_count(2), 0);

  EXPECT_EQ(tree.position_in_parent(1), 0);
  EXPECT_EQ(tree.position_in_parent(3), 1);
  EXPECT_EQ(tree.depth(0), 0);
  EXPECT_EQ(tree.depth(2), 2);

  EXPECT_TRUE(tree.is_element(0));
  EXPECT_TRUE(tree.is_text(2));
  EXPECT_EQ(tree.label(2), LabelTable::kTextLabel);
  EXPECT_EQ(labels.Name(tree.label(1)), "b");

  EXPECT_EQ(tree.dom(2)->text(), "t");
}

TEST(DiffTreeTest, PostorderVisitsChildrenFirst) {
  XmlDocument doc = MustParse("<a><b><c/><d/></b><e/></a>");
  LabelTable labels;
  DiffTree tree = DiffTree::Build(&doc, &labels);
  // Preorder: a=0 b=1 c=2 d=3 e=4. Postorder: c d b e a.
  EXPECT_EQ(tree.postorder(),
            (std::vector<NodeIndex>{2, 3, 1, 4, 0}));
}

TEST(DiffTreeTest, SharedLabelTableAcrossTrees) {
  XmlDocument doc1 = MustParse("<a><b/></a>");
  XmlDocument doc2 = MustParse("<b><a/></b>");
  LabelTable labels;
  DiffTree t1 = DiffTree::Build(&doc1, &labels);
  DiffTree t2 = DiffTree::Build(&doc2, &labels);
  EXPECT_EQ(t1.label(0), t2.label(1));  // "a"
  EXPECT_EQ(t1.label(1), t2.label(0));  // "b"
}

TEST(DiffTreeTest, MatchStateDefaultsUnmatched) {
  XmlDocument doc = MustParse("<a><b/></a>");
  LabelTable labels;
  DiffTree tree = DiffTree::Build(&doc, &labels);
  for (NodeIndex i = 0; i < tree.size(); ++i) {
    EXPECT_FALSE(tree.matched(i));
    EXPECT_FALSE(tree.id_locked(i));
  }
  tree.set_match(1, 7);
  EXPECT_TRUE(tree.matched(1));
  EXPECT_EQ(tree.match(1), 7);
  tree.set_id_locked(1);
  EXPECT_TRUE(tree.id_locked(1));
}

TEST(DiffTreeTest, SingleNode) {
  XmlDocument doc = MustParse("<only/>");
  LabelTable labels;
  DiffTree tree = DiffTree::Build(&doc, &labels);
  EXPECT_EQ(tree.size(), 1);
  EXPECT_EQ(tree.child_count(0), 0);
  EXPECT_EQ(tree.postorder(), (std::vector<NodeIndex>{0}));
}

TEST(DiffTreeTest, WideTree) {
  std::string xml = "<r>";
  for (int i = 0; i < 100; ++i) xml += "<c/>";
  xml += "</r>";
  XmlDocument doc = MustParse(xml);
  LabelTable labels;
  DiffTree tree = DiffTree::Build(&doc, &labels);
  ASSERT_EQ(tree.size(), 101);
  EXPECT_EQ(tree.child_count(0), 100);
  for (int32_t k = 0; k < 100; ++k) {
    EXPECT_EQ(tree.child(0, k), k + 1);
    EXPECT_EQ(tree.position_in_parent(k + 1), k);
  }
}

}  // namespace
}  // namespace xydiff
