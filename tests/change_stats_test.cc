#include "monitor/change_stats.h"

#include "core/buld.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xydiff {
namespace {

/// Diffs two documents and feeds the result to the statistics collector.
void Feed(ChangeStatistics* stats, std::string_view old_xml,
          std::string_view new_xml) {
  XmlDocument old_doc = MustParse(old_xml);
  old_doc.AssignInitialXids();
  XmlDocument new_doc = MustParse(new_xml);
  Result<Delta> delta = XyDiff(&old_doc, &new_doc);
  ASSERT_TRUE(delta.ok());
  stats->Accumulate(*delta, old_doc, new_doc);
}

TEST(ChangeStatsTest, EmptyCollector) {
  ChangeStatistics stats;
  EXPECT_EQ(stats.delta_count(), 0u);
  EXPECT_EQ(stats.ForLabel("anything").occurrences, 0u);
  EXPECT_TRUE(stats.MostVolatile(5).empty());
}

TEST(ChangeStatsTest, PriceChangesMoreThanDescription) {
  // The paper's own example: "learn that a price node is more likely to
  // change than a description node" (§5.2).
  ChangeStatistics stats;
  const char* version_a =
      "<shop><item><price>1</price><desc>stable text</desc></item>"
      "<item><price>5</price><desc>also stable</desc></item></shop>";
  const char* version_b =
      "<shop><item><price>2</price><desc>stable text</desc></item>"
      "<item><price>6</price><desc>also stable</desc></item></shop>";
  const char* version_c =
      "<shop><item><price>3</price><desc>stable text</desc></item>"
      "<item><price>7</price><desc>also stable</desc></item></shop>";
  Feed(&stats, version_a, version_b);
  Feed(&stats, version_b, version_c);

  EXPECT_EQ(stats.delta_count(), 2u);
  const auto price = stats.ForLabel("price");
  const auto desc = stats.ForLabel("desc");
  EXPECT_EQ(price.text_updated, 4u);  // 2 prices x 2 transitions.
  EXPECT_EQ(desc.text_updated, 0u);
  EXPECT_GT(price.change_rate(), desc.change_rate());

  const auto ranking = stats.MostVolatile(3);
  ASSERT_FALSE(ranking.empty());
  EXPECT_EQ(ranking[0].first, "price");
}

TEST(ChangeStatsTest, CountsInsertDeleteMove) {
  ChangeStatistics stats;
  Feed(&stats,
       "<r><keep>long stable payload</keep><gone><x>bye</x></gone>"
       "<spot/></r>",
       "<r><spot><keep>long stable payload</keep></spot><fresh/></r>");
  const auto gone = stats.ForLabel("gone");
  EXPECT_EQ(gone.deleted, 1u);
  EXPECT_EQ(stats.ForLabel("x").deleted, 1u);
  EXPECT_EQ(stats.ForLabel("fresh").inserted, 1u);
  EXPECT_EQ(stats.ForLabel("keep").moved, 1u);
  // Deleted elements still count as occurrences.
  EXPECT_GE(gone.occurrences, 1u);
}

TEST(ChangeStatsTest, CountsAttributeChanges) {
  ChangeStatistics stats;
  Feed(&stats, R"(<r><p k="1">t</p></r>)", R"(<r><p k="2">t</p></r>)");
  EXPECT_EQ(stats.ForLabel("p").attr_changed, 1u);
}

TEST(ChangeStatsTest, OccurrencesAccumulate) {
  ChangeStatistics stats;
  Feed(&stats, "<r><a/><a/></r>", "<r><a/><a/></r>");
  Feed(&stats, "<r><a/><a/></r>", "<r><a/><a/></r>");
  EXPECT_EQ(stats.ForLabel("a").occurrences, 4u);
  EXPECT_EQ(stats.ForLabel("a").total_changes(), 0u);
}

TEST(ChangeStatsTest, MostVolatileRespectsMinOccurrences) {
  ChangeStatistics stats;
  Feed(&stats, "<r><rare>x</rare></r>", "<r><rare>y</rare></r>");
  // Only one sighting of <rare>: excluded at min_occurrences=4,
  // included at 1.
  EXPECT_TRUE(stats.MostVolatile(5, 4).empty());
  EXPECT_FALSE(stats.MostVolatile(5, 1).empty());
}

TEST(ChangeStatsTest, ReportIsReadable) {
  ChangeStatistics stats;
  Feed(&stats, "<r><price>1</price></r>", "<r><price>2</price></r>");
  const std::string report = stats.Report(5);
  EXPECT_NE(report.find("change statistics over 1 delta(s)"),
            std::string::npos);
}

}  // namespace
}  // namespace xydiff
