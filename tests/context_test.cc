// Unit tests for the deadline/cancellation Context (util/context.h) and
// the unified retry policy (util/retry.h). The contract under test:
// Check() reports kCancelled over kDeadlineExceeded, DeadlineChecker
// only touches the clock every stride-th call, RetryBackoff grows
// exponentially with bounded equal jitter, and RetryTransient retries
// only transient I/O errors, deadline-aware.

#include <atomic>
#include <chrono>

#include "gtest/gtest.h"
#include "util/context.h"
#include "util/retry.h"
#include "util/status.h"

namespace xydiff {
namespace {

using std::chrono::milliseconds;

TEST(ContextTest, DefaultContextIsLive) {
  Context ctx;
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_FALSE(ctx.expired());
  EXPECT_FALSE(ctx.remaining().has_value());
  EXPECT_TRUE(ctx.Check().ok());
}

TEST(ContextTest, ExpiredDeadlineReportsDeadlineExceeded) {
  const Context ctx = Context::WithTimeout(milliseconds(0));
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_TRUE(ctx.expired());
  const Status status = ctx.Check();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(IsContextError(status.code()));
}

TEST(ContextTest, FutureDeadlineIsLiveAndRemainingIsPositive) {
  const Context ctx = Context::WithTimeout(milliseconds(60000));
  EXPECT_TRUE(ctx.Check().ok());
  ASSERT_TRUE(ctx.remaining().has_value());
  EXPECT_GT(ctx.remaining()->count(), 0);
}

TEST(ContextTest, CancellationSourcePropagatesToEveryDerivedContext) {
  CancellationSource source;
  const Context a = source.MakeContext();
  const Context b = source.MakeContext();
  EXPECT_TRUE(a.Check().ok());
  source.Cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  EXPECT_EQ(a.Check().code(), StatusCode::kCancelled);
  EXPECT_EQ(b.Check().code(), StatusCode::kCancelled);
}

TEST(ContextTest, CancelledWinsOverExpiredDeadline) {
  CancellationSource source;
  const Context ctx =
      source.Attach(Context::WithTimeout(milliseconds(0)));
  source.Cancel();
  // Both conditions hold; the cancellation is the caller's explicit
  // request and must be the one reported.
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

TEST(ContextTest, AttachKeepsTheBaseDeadline) {
  CancellationSource source;
  const Context ctx =
      source.Attach(Context::WithTimeout(milliseconds(60000)));
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_TRUE(ctx.Check().ok());
  source.Cancel();
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

TEST(ContextTest, RemainingClampsToZeroAfterExpiry) {
  const Context ctx = Context::WithTimeout(milliseconds(0));
  ASSERT_TRUE(ctx.remaining().has_value());
  EXPECT_EQ(ctx.remaining()->count(), 0);
}

TEST(DeadlineCheckerTest, NullContextAlwaysPasses) {
  DeadlineChecker checker(nullptr);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(checker.Check().ok());
  }
  EXPECT_TRUE(checker.CheckNow().ok());
}

TEST(DeadlineCheckerTest, StridedCheckEventuallySeesTheDeadline) {
  const Context ctx = Context::WithTimeout(milliseconds(0));
  DeadlineChecker checker(&ctx, /*stride=*/8);
  // Within one full stride the amortized check must have fired.
  Status last = Status::OK();
  for (int i = 0; i < 8 && last.ok(); ++i) {
    last = checker.Check();
  }
  EXPECT_EQ(last.code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineCheckerTest, CheckNowIsUnconditional) {
  const Context ctx = Context::WithTimeout(milliseconds(0));
  DeadlineChecker checker(&ctx, /*stride=*/1000000);
  EXPECT_EQ(checker.CheckNow().code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineCheckerTest, CancellationIsSeenImmediatelyNotAmortized) {
  CancellationSource source;
  const Context ctx = source.MakeContext();
  DeadlineChecker checker(&ctx, /*stride=*/1000000);
  EXPECT_TRUE(checker.Check().ok());
  source.Cancel();
  // The cancel flag is a plain atomic load — cheap enough to test on
  // every call regardless of stride.
  EXPECT_EQ(checker.Check().code(), StatusCode::kCancelled);
}

TEST(RetryBackoffTest, GrowsExponentiallyAndStaysBounded) {
  RetryPolicy policy;
  policy.backoff_ms = 2;
  policy.max_backoff_ms = 50;
  policy.jitter_seed = 7;
  for (int attempt = 0; attempt < 12; ++attempt) {
    const milliseconds delay = RetryBackoff(policy, attempt);
    EXPECT_GE(delay.count(), 0);
    EXPECT_LE(delay.count(), policy.max_backoff_ms);
  }
}

TEST(RetryBackoffTest, JitterIsDeterministicPerSeedAndAttempt) {
  RetryPolicy policy;
  policy.backoff_ms = 4;
  policy.jitter_seed = 42;
  for (int attempt = 0; attempt < 6; ++attempt) {
    EXPECT_EQ(RetryBackoff(policy, attempt).count(),
              RetryBackoff(policy, attempt).count())
        << "attempt " << attempt;
  }
}

TEST(RetryBackoffTest, EqualJitterKeepsAtLeastHalfTheDelay) {
  RetryPolicy policy;
  policy.backoff_ms = 8;
  policy.max_backoff_ms = 1000;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    policy.jitter_seed = seed;
    const milliseconds delay = RetryBackoff(policy, /*attempt=*/2);
    // Full backoff for attempt 2 is 8 << 2 = 32 ms; equal jitter keeps
    // the fixed half and draws the rest.
    EXPECT_GE(delay.count(), 16);
    EXPECT_LE(delay.count(), 32);
  }
}

TEST(RetryTransientTest, SucceedsWithoutRetriesOnFirstOk) {
  RetryPolicy policy;
  size_t retries = 0;
  int calls = 0;
  const Status status = RetryTransient(
      policy, nullptr, [&] { ++calls; return Status::OK(); }, &retries);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retries, 0u);
}

TEST(RetryTransientTest, RetriesTransientIOErrorUntilSuccess) {
  RetryPolicy policy;
  policy.backoff_ms = 0;  // No real sleeping in unit tests.
  size_t retries = 0;
  int calls = 0;
  const Status status = RetryTransient(
      policy, nullptr,
      [&] {
        ++calls;
        return calls < 3 ? Status::IOError("transient") : Status::OK();
      },
      &retries);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST(RetryTransientTest, DoesNotRetryNonTransientErrors) {
  RetryPolicy policy;
  policy.backoff_ms = 0;
  int calls = 0;
  const Status status = RetryTransient(
      policy, nullptr, [&] { ++calls; return Status::Corruption("fatal"); },
      nullptr);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTransientTest, GivesUpAfterMaxRetries) {
  RetryPolicy policy;
  policy.max_retries = 2;
  policy.backoff_ms = 0;
  size_t retries = 0;
  int calls = 0;
  const Status status = RetryTransient(
      policy, nullptr, [&] { ++calls; return Status::IOError("still down"); },
      &retries);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(calls, 3);  // Initial attempt + 2 retries.
  EXPECT_EQ(retries, 2u);
}

TEST(RetryTransientTest, DeadContextSurfacesContextErrorInsteadOfRetrying) {
  RetryPolicy policy;
  policy.max_retries = 10;
  policy.backoff_ms = 0;
  const Context expired = Context::WithTimeout(milliseconds(0));
  int calls = 0;
  const Status status = RetryTransient(
      policy, &expired, [&] { ++calls; return Status::IOError("transient"); },
      nullptr);
  // The op runs once; the retry loop then notices the dead context and
  // reports it rather than burning the remaining attempts.
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTransientTest, CancellationStopsTheRetryLoop) {
  RetryPolicy policy;
  policy.max_retries = 10;
  policy.backoff_ms = 0;
  CancellationSource source;
  const Context ctx = source.MakeContext();
  int calls = 0;
  const Status status = RetryTransient(
      policy, &ctx,
      [&] {
        ++calls;
        source.Cancel();  // The op's own side channel pulls the plug.
        return Status::IOError("transient");
      },
      nullptr);
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(calls, 1);
}

TEST(StatusTest, NewOverloadCodesHaveNamesAndFactories) {
  EXPECT_EQ(Status::DeadlineExceeded("d").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("c").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::ResourceExhausted("r").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unavailable("u").code(), StatusCode::kUnavailable);
  EXPECT_NE(Status::DeadlineExceeded("d").ToString().find("DeadlineExceeded"),
            std::string::npos);
  EXPECT_NE(Status::Unavailable("u").ToString().find("Unavailable"),
            std::string::npos);
  EXPECT_FALSE(IsContextError(StatusCode::kResourceExhausted));
  EXPECT_FALSE(IsContextError(StatusCode::kUnavailable));
}

}  // namespace
}  // namespace xydiff
