#include "delta/summary.h"

#include "core/buld.h"
#include "delta/apply.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xydiff {
namespace {

TEST(NodePathTest, SimplePaths) {
  XmlDocument doc = MustParse("<a><b><c/></b><b><c/>text</b></a>");
  EXPECT_EQ(NodePath(*doc.root()), "/a");
  EXPECT_EQ(NodePath(*doc.root()->child(0)), "/a/b[1]");
  EXPECT_EQ(NodePath(*doc.root()->child(1)), "/a/b[2]");
  EXPECT_EQ(NodePath(*doc.root()->child(1)->child(0)), "/a/b[2]/c");
  EXPECT_EQ(NodePath(*doc.root()->child(1)->child(1)), "/a/b[2]/text()");
}

TEST(NodePathTest, OrdinalOnlyWhenAmbiguous) {
  XmlDocument doc = MustParse("<a><unique/><dup/><dup/></a>");
  EXPECT_EQ(NodePath(*doc.root()->child(0)), "/a/unique");
  EXPECT_EQ(NodePath(*doc.root()->child(1)), "/a/dup[1]");
}

class ExplainTest : public ::testing::Test {
 protected:
  /// Diffs and explains; asserts success.
  std::string Explain(std::string_view old_xml, std::string_view new_xml) {
    XmlDocument old_doc = MustParse(old_xml);
    old_doc.AssignInitialXids();
    XmlDocument new_doc = MustParse(new_xml);
    Result<Delta> delta = XyDiff(&old_doc, &new_doc);
    EXPECT_TRUE(delta.ok());
    Result<std::string> text = ExplainDelta(*delta, old_doc, new_doc);
    EXPECT_TRUE(text.ok()) << text.status().ToString();
    return text.ok() ? *text : std::string();
  }
};

TEST_F(ExplainTest, PaperExampleReport) {
  const std::string report = Explain(
      "<Category><Title>Digital Cameras</Title>"
      "<Discount><Product><Name>tx123</Name><Price>$499</Price></Product>"
      "</Discount><NewProducts><Product><Name>zy456</Name>"
      "<Price>$799</Price></Product></NewProducts></Category>",
      "<Category><Title>Digital Cameras</Title>"
      "<Discount><Product><Name>zy456</Name><Price>$699</Price></Product>"
      "</Discount><NewProducts><Product><Name>abc</Name>"
      "<Price>$899</Price></Product></NewProducts></Category>");
  EXPECT_NE(report.find("deleted   <Product> \"tx123\""), std::string::npos)
      << report;
  EXPECT_NE(report.find("inserted  <Product> \"abc\""), std::string::npos);
  EXPECT_NE(report.find("moved     <Product> \"zy456\" from "
                        "/Category/NewProducts/Product to "
                        "/Category/Discount/Product"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("\"$799\" -> \"$699\""), std::string::npos);
}

TEST_F(ExplainTest, AttributeLines) {
  const std::string report = Explain(R"(<r><p a="1" b="2">t</p></r>)",
                                     R"(<r><p a="9" c="3">t</p></r>)");
  EXPECT_NE(report.find("attribute /r/p/@a: \"1\" -> \"9\""),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("attribute /r/p/@b removed (was \"2\")"),
            std::string::npos);
  EXPECT_NE(report.find("attribute /r/p/@c added = \"3\""),
            std::string::npos);
}

TEST_F(ExplainTest, LongTextIsEllipsized) {
  const std::string long_text(200, 'x');
  const std::string report =
      Explain("<r><t>" + long_text + "</t></r>", "<r><t>short</t></r>");
  EXPECT_EQ(report.find(long_text), std::string::npos);
  EXPECT_NE(report.find("..."), std::string::npos);
}

TEST_F(ExplainTest, EmptyDeltaEmptyReport) {
  EXPECT_EQ(Explain("<a><b>x</b></a>", "<a><b>x</b></a>"), "");
}

TEST_F(ExplainTest, UnknownXidFails) {
  Delta delta;
  delta.updates().push_back(UpdateOp{999, "a", "b"});
  XmlDocument doc = MustParse("<z/>");
  doc.AssignInitialXids();
  Result<std::string> text = ExplainDelta(delta, doc, doc);
  EXPECT_EQ(text.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace xydiff
