#include "monitor/subscription.h"

#include "core/buld.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xydiff {
namespace {

/// Runs a diff between the two documents and evaluates the alerter over
/// the result.
std::vector<Alert> DiffAndEvaluate(Alerter* alerter, std::string_view old_xml,
                                   std::string_view new_xml) {
  XmlDocument old_doc = MustParse(old_xml);
  old_doc.AssignInitialXids();
  XmlDocument new_doc = MustParse(new_xml);
  Result<Delta> delta = XyDiff(&old_doc, &new_doc);
  EXPECT_TRUE(delta.ok());
  return alerter->Evaluate(*delta, old_doc, new_doc);
}

constexpr std::string_view kCatalogOld =
    "<Category><Title>Cameras</Title>"
    "<NewProducts><Product><Name>zy456</Name><Price>$799</Price></Product>"
    "</NewProducts></Category>";

TEST(AlerterTest, NewProductSubscriptionFires) {
  // The paper's motivating subscription: "a new product has been added
  // to a catalog" (§2).
  Alerter alerter;
  XY_ASSERT_OK(alerter.Subscribe("new-products",
                                 "/Category/NewProducts/Product",
                                 ChangeKind::kInsert));
  const auto alerts = DiffAndEvaluate(
      &alerter, kCatalogOld,
      "<Category><Title>Cameras</Title>"
      "<NewProducts><Product><Name>zy456</Name><Price>$799</Price></Product>"
      "<Product><Name>abc</Name><Price>$899</Price></Product>"
      "</NewProducts></Category>");
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].subscription_id, "new-products");
  EXPECT_EQ(alerts[0].kind, ChangeKind::kInsert);
  EXPECT_NE(alerts[0].detail.find("Product"), std::string::npos);
}

TEST(AlerterTest, NoAlertWhenNothingRelevantChanges) {
  Alerter alerter;
  XY_ASSERT_OK(alerter.Subscribe("new-products",
                                 "/Category/NewProducts/Product",
                                 ChangeKind::kInsert));
  const auto alerts = DiffAndEvaluate(
      &alerter, kCatalogOld,
      "<Category><Title>Video Cameras</Title>"
      "<NewProducts><Product><Name>zy456</Name><Price>$799</Price></Product>"
      "</NewProducts></Category>");
  EXPECT_TRUE(alerts.empty());
}

TEST(AlerterTest, UpdateSubscriptionSeesPriceChange) {
  Alerter alerter;
  XY_ASSERT_OK(
      alerter.Subscribe("price-watch", "//Price", ChangeKind::kUpdate));
  const auto alerts = DiffAndEvaluate(
      &alerter, kCatalogOld,
      "<Category><Title>Cameras</Title>"
      "<NewProducts><Product><Name>zy456</Name><Price>$699</Price></Product>"
      "</NewProducts></Category>");
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, ChangeKind::kUpdate);
  EXPECT_NE(alerts[0].detail.find("$799"), std::string::npos);
  EXPECT_NE(alerts[0].detail.find("$699"), std::string::npos);
}

TEST(AlerterTest, DeleteSubscription) {
  Alerter alerter;
  XY_ASSERT_OK(alerter.Subscribe("gone", "//Product", ChangeKind::kDelete));
  const auto alerts = DiffAndEvaluate(
      &alerter, kCatalogOld,
      "<Category><Title>Cameras</Title><NewProducts/></Category>");
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, ChangeKind::kDelete);
}

TEST(AlerterTest, KindlessSubscriptionSeesEverything) {
  Alerter alerter;
  XY_ASSERT_OK(alerter.Subscribe("all", "//Product"));
  const auto alerts = DiffAndEvaluate(
      &alerter, kCatalogOld,
      "<Category><Title>Cameras</Title>"
      "<NewProducts><Product><Name>zy456</Name><Price>$1</Price></Product>"
      "<Product><Name>n</Name></Product></NewProducts></Category>");
  // One insert (new product) + one update (price, reported against its
  // Price parent -> not /Product... the update fires on <Price>).
  bool saw_insert = false;
  for (const Alert& alert : alerts) {
    if (alert.kind == ChangeKind::kInsert) saw_insert = true;
  }
  EXPECT_TRUE(saw_insert);
}

TEST(AlerterTest, MoveSubscription) {
  Alerter alerter;
  XY_ASSERT_OK(alerter.Subscribe("moves", "//Product", ChangeKind::kMove));
  const auto alerts = DiffAndEvaluate(
      &alerter,
      "<Category><Discount/><NewProducts><Product><Name>zy456</Name>"
      "<Price>$799</Price></Product></NewProducts></Category>",
      "<Category><Discount><Product><Name>zy456</Name>"
      "<Price>$799</Price></Product></Discount><NewProducts/></Category>");
  ASSERT_GE(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, ChangeKind::kMove);
}

TEST(AlerterTest, AttributeSubscription) {
  Alerter alerter;
  XY_ASSERT_OK(alerter.Subscribe("attrs", "//Product[@status='sale']",
                                 ChangeKind::kAttribute));
  const auto alerts = DiffAndEvaluate(
      &alerter,
      "<Category><Product status=\"full\"><Name>a</Name></Product>"
      "</Category>",
      "<Category><Product status=\"sale\"><Name>a</Name></Product>"
      "</Category>");
  // The predicate is evaluated against the new version, where status is
  // already "sale".
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, ChangeKind::kAttribute);
}

TEST(AlerterTest, SubscribeValidation) {
  Alerter alerter;
  XY_ASSERT_OK(alerter.Subscribe("one", "//x"));
  EXPECT_EQ(alerter.Subscribe("one", "//y").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(alerter.Subscribe("two", "not-a-path").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(alerter.subscription_count(), 1u);
}

TEST(AlerterTest, Unsubscribe) {
  Alerter alerter;
  XY_ASSERT_OK(alerter.Subscribe("x", "//x"));
  EXPECT_TRUE(alerter.Unsubscribe("x"));
  EXPECT_FALSE(alerter.Unsubscribe("x"));
  EXPECT_EQ(alerter.subscription_count(), 0u);
}

TEST(AlerterTest, ContentFilterOnInsertedElement) {
  Alerter alerter;
  XY_ASSERT_OK(alerter.Subscribe("zy-watch", "//Product", ChangeKind::kInsert,
                                 "zy456"));
  // Inserting a product named "abc" does not fire; inserting zy456 does.
  const auto miss = DiffAndEvaluate(
      &alerter, "<cat><Product><Name>old</Name></Product></cat>",
      "<cat><Product><Name>old</Name></Product>"
      "<Product><Name>abc</Name></Product></cat>");
  EXPECT_TRUE(miss.empty());
  const auto hit = DiffAndEvaluate(
      &alerter, "<cat><Product><Name>old</Name></Product></cat>",
      "<cat><Product><Name>old</Name></Product>"
      "<Product><Name>zy456</Name></Product></cat>");
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_NE(hit[0].detail.find("zy456"), std::string::npos);
}

TEST(AlerterTest, ContentFilterOnUpdateValue) {
  Alerter alerter;
  XY_ASSERT_OK(alerter.Subscribe("big-price", "//Price", ChangeKind::kUpdate,
                                 "$999"));
  const auto miss = DiffAndEvaluate(
      &alerter, "<r><Price>$10</Price></r>", "<r><Price>$20</Price></r>");
  EXPECT_TRUE(miss.empty());
  const auto hit = DiffAndEvaluate(
      &alerter, "<r><Price>$10</Price></r>", "<r><Price>$999</Price></r>");
  EXPECT_EQ(hit.size(), 1u);
}

TEST(AlerterTest, ChangeKindNames) {
  EXPECT_STREQ(ChangeKindName(ChangeKind::kInsert), "insert");
  EXPECT_STREQ(ChangeKindName(ChangeKind::kDelete), "delete");
  EXPECT_STREQ(ChangeKindName(ChangeKind::kUpdate), "update");
  EXPECT_STREQ(ChangeKindName(ChangeKind::kMove), "move");
  EXPECT_STREQ(ChangeKindName(ChangeKind::kAttribute), "attribute");
}

}  // namespace
}  // namespace xydiff
