#include "baseline/zhang_shasha.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xydiff {
namespace {

size_t Ted(std::string_view a, std::string_view b) {
  XmlDocument da = MustParse(a);
  XmlDocument db = MustParse(b);
  return TreeEditDistance(*da.root(), *db.root());
}

TEST(ZhangShashaTest, IdenticalTreesHaveZeroDistance) {
  EXPECT_EQ(Ted("<a><b>x</b><c/></a>", "<a><b>x</b><c/></a>"), 0u);
  EXPECT_EQ(Ted("<a/>", "<a/>"), 0u);
}

TEST(ZhangShashaTest, SingleRelabel) {
  EXPECT_EQ(Ted("<a/>", "<b/>"), 1u);
  EXPECT_EQ(Ted("<a><x/></a>", "<a><y/></a>"), 1u);
  EXPECT_EQ(Ted("<a>text</a>", "<a>other</a>"), 1u);
}

TEST(ZhangShashaTest, SingleInsertOrDelete) {
  EXPECT_EQ(Ted("<a/>", "<a><b/></a>"), 1u);
  EXPECT_EQ(Ted("<a><b/></a>", "<a/>"), 1u);
  EXPECT_EQ(Ted("<a><b/><c/></a>", "<a><b/></a>"), 1u);
}

TEST(ZhangShashaTest, InsertedInternalNode) {
  // Wrapping children in a new node costs exactly one insertion in the
  // Tai/Zhang-Shasha model.
  EXPECT_EQ(Ted("<a><b/><c/></a>", "<a><w><b/><c/></w></a>"), 1u);
}

TEST(ZhangShashaTest, Symmetry) {
  const std::string_view t1 = "<a><b><c/></b><d>x</d></a>";
  const std::string_view t2 = "<a><d>y</d><e/></a>";
  EXPECT_EQ(Ted(t1, t2), Ted(t2, t1));
}

TEST(ZhangShashaTest, TriangleInequalityOnSamples) {
  const std::string_view docs[] = {
      "<a><b/><c>x</c></a>",
      "<a><c>y</c></a>",
      "<q><b/><b/></q>",
  };
  for (const auto& x : docs) {
    for (const auto& y : docs) {
      for (const auto& z : docs) {
        EXPECT_LE(Ted(x, z), Ted(x, y) + Ted(y, z));
      }
    }
  }
}

TEST(ZhangShashaTest, DistanceBoundedBySizes) {
  const std::string_view t1 = "<a><b/><c><d/></c></a>";  // 4 nodes.
  const std::string_view t2 = "<x><y/></x>";             // 2 nodes.
  EXPECT_LE(Ted(t1, t2), 6u);
  EXPECT_GE(Ted(t1, t2), 2u);  // At least the size difference.
}

TEST(ZhangShashaTest, KnownTextbookExample) {
  // Zhang-Shasha's classic example pair: distance 2 between
  // f(d(a c(b)) e) and f(c(d(a b)) e) — relabel nothing, move b via one
  // delete + one insert equivalent. Encoded in XML labels.
  const std::string_view t1 = "<f><d><a/><c><b/></c></d><e/></f>";
  const std::string_view t2 = "<f><c><d><a/><b/></d></c><e/></f>";
  EXPECT_EQ(Ted(t1, t2), 2u);
}

TEST(ZhangShashaTest, AttributesDoNotAffectUnitCosts) {
  // The classic model looks at labels only; our relabel cost follows the
  // label/text, not attributes.
  EXPECT_EQ(Ted("<a k=\"1\"/>", "<a k=\"2\"/>"), 0u);
}

}  // namespace
}  // namespace xydiff
