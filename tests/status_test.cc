#include "util/status.h"

#include <memory>
#include <string>
#include <utility>

#include "gtest/gtest.h"

namespace xydiff {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("line 3: bad tag");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "line 3: bad tag");
  EXPECT_EQ(s.ToString(), "ParseError: line 3: bad tag");
}

TEST(StatusTest, AllErrorFactories) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Conflict("x").code(), StatusCode::kConflict);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kConflict), "Conflict");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Conflict("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nothing here"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, ResultItselfMoves) {
  Result<std::string> r(std::string("payload"));
  Result<std::string> moved = std::move(r);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, "payload");

  Result<std::string> err(Status::Corruption("bad block"));
  Result<std::string> moved_err = std::move(err);
  ASSERT_FALSE(moved_err.ok());
  EXPECT_EQ(moved_err.status(), Status::Corruption("bad block"));
}

TEST(ResultTest, MovingOutTheValueLeavesStatusOk) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
  // The Result still reports ok(); only the payload was consumed.
  EXPECT_TRUE(r.ok());
}

TEST(ResultTest, ExplicitDiscardIsSpelledVoid) {
  // Status and Result<T> are [[nodiscard]]: a bare `Noisy();` call is a
  // compile error under the analyze preset (see
  // tests/compile_fail/discard_status.cc for the negative proof). The
  // sanctioned discard spelling is a (void) cast plus justification:
  const auto noisy = [] { return Status::Conflict("ignored on purpose"); };
  // Exercising the documented escape hatch is the point of this test.
  (void)noisy();
  SUCCEED();
}

Status FailIfNegative(int x) {
  XYDIFF_RETURN_IF_ERROR(x < 0 ? Status::InvalidArgument("negative")
                               : Status::OK());
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailIfNegative(1).ok());
  EXPECT_EQ(FailIfNegative(-1).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace xydiff
