#include "delta/signature.h"

#include <cmath>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xydiff {
namespace {

struct TreePair {
  XmlDocument doc;
  LabelTable labels;
  DiffTree tree;
};

std::unique_ptr<TreePair> MakeTree(std::string_view xml,
                                   const DiffOptions& options = {}) {
  auto pair = std::make_unique<TreePair>();
  pair->doc = MustParse(xml);
  pair->tree = DiffTree::Build(&pair->doc, &pair->labels);
  ComputeSignaturesAndWeights(&pair->tree, options);
  return pair;
}

TEST(SignatureTest, IdenticalSubtreesShareSignatures) {
  auto t = MakeTree("<r><p><n>x</n></p><p><n>x</n></p></r>");
  // Nodes: r=0, p=1, n=2, x=3, p=4, n=5, x=6.
  EXPECT_EQ(t->tree.signature(1), t->tree.signature(4));
  EXPECT_EQ(t->tree.signature(2), t->tree.signature(5));
  EXPECT_EQ(t->tree.signature(3), t->tree.signature(6));
}

TEST(SignatureTest, DifferentContentDiffers) {
  auto t = MakeTree("<r><p><n>x</n></p><p><n>y</n></p></r>");
  EXPECT_NE(t->tree.signature(1), t->tree.signature(4));
  EXPECT_NE(t->tree.signature(3), t->tree.signature(6));
}

TEST(SignatureTest, LabelAffectsSignature) {
  auto t = MakeTree("<r><a>x</a><b>x</b></r>");
  EXPECT_NE(t->tree.signature(1), t->tree.signature(3));
  // But the text children are identical.
  EXPECT_EQ(t->tree.signature(2), t->tree.signature(4));
}

TEST(SignatureTest, TextVsElementNeverCollide) {
  auto t = MakeTree("<r><abc/>abc</r>");
  EXPECT_NE(t->tree.signature(1), t->tree.signature(2));
}

TEST(SignatureTest, ChildOrderMatters) {
  auto t = MakeTree("<r><p><a/><b/></p><p><b/><a/></p></r>");
  EXPECT_NE(t->tree.signature(1), t->tree.signature(4));
}

TEST(SignatureTest, AttributeOrderIrrelevant) {
  auto t = MakeTree(R"(<r><p x="1" y="2"/><p y="2" x="1"/></r>)");
  EXPECT_EQ(t->tree.signature(1), t->tree.signature(2));
}

TEST(SignatureTest, AttributeValueMatters) {
  auto t = MakeTree(R"(<r><p x="1"/><p x="2"/><p/></r>)");
  EXPECT_NE(t->tree.signature(1), t->tree.signature(2));
  EXPECT_NE(t->tree.signature(1), t->tree.signature(3));
}

TEST(SignatureTest, WeightsFollowPaperFormula) {
  auto t = MakeTree("<r><p>hello</p></r>");
  // Text "hello": 1 + ln(6). Element p: 1 + text. Root: 1 + p.
  const double text_w = 1.0 + std::log(1.0 + 5.0);
  EXPECT_DOUBLE_EQ(t->tree.weight(2), text_w);
  EXPECT_DOUBLE_EQ(t->tree.weight(1), 1.0 + text_w);
  EXPECT_DOUBLE_EQ(t->tree.weight(0), 2.0 + text_w);
  EXPECT_DOUBLE_EQ(t->tree.total_weight(), t->tree.weight(0));
}

TEST(SignatureTest, FlatTextWeightOption) {
  DiffOptions options;
  options.text_log_weight = false;
  auto t = MakeTree("<r><p>a much longer text than one word</p></r>", options);
  EXPECT_DOUBLE_EQ(t->tree.weight(2), 1.0);
}

TEST(SignatureTest, ElementWeightAtLeastSumOfChildren) {
  // §5.2: "the weight of an element node must be no less than the sum of
  // its children".
  auto t = MakeTree("<r><a>xx</a><b><c/>yy</b><d/></r>");
  for (NodeIndex i = 0; i < t->tree.size(); ++i) {
    if (!t->tree.is_element(i)) continue;
    double sum = 0;
    for (int32_t k = 0; k < t->tree.child_count(i); ++k) {
      sum += t->tree.weight(t->tree.child(i, k));
    }
    EXPECT_GE(t->tree.weight(i), sum);
  }
}

TEST(SignatureTest, StandaloneSubtreeSignatureMatchesTree) {
  auto t = MakeTree("<r><p a=\"1\"><n>x</n></p></r>");
  for (NodeIndex i = 0; i < t->tree.size(); ++i) {
    EXPECT_EQ(SubtreeSignature(*t->tree.dom(i)), t->tree.signature(i))
        << "node " << i;
  }
}

TEST(SignatureTest, EmptyTextNode) {
  ParseOptions keep;
  keep.keep_whitespace_text = true;
  Result<XmlDocument> doc = ParseXml("<r> </r>", keep);
  ASSERT_TRUE(doc.ok());
  LabelTable labels;
  DiffTree tree = DiffTree::Build(&doc.value(), &labels);
  DiffOptions options;
  ComputeSignaturesAndWeights(&tree, options);
  EXPECT_GT(tree.weight(1), 0.0);
}

}  // namespace
}  // namespace xydiff
