#include "delta/validate.h"

#include "core/buld.h"
#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace xydiff {
namespace {

XmlNodePtr Snapshot(Xid xid) {
  auto node = XmlNode::Element("p");
  node->set_xid(xid);
  return node;
}

TEST(ValidateTest, EmptyDeltaIsValid) {
  EXPECT_TRUE(ValidateDelta(Delta{}).ok());
}

TEST(ValidateTest, DiffOutputsAreValid) {
  Rng rng(3);
  DocGenOptions gen;
  gen.target_bytes = 8192;
  for (int round = 0; round < 5; ++round) {
    XmlDocument base = GenerateDocument(&rng, gen);
    base.AssignInitialXids();
    Result<SimulatedChange> change =
        SimulateChanges(base, ChangeSimOptions{}, &rng);
    ASSERT_TRUE(change.ok());
    XY_EXPECT_OK(ValidateDelta(change->perfect_delta));
    XmlDocument a = base.Clone();
    XmlDocument b = change->new_version.Clone();
    Result<Delta> delta = XyDiff(&a, &b);
    ASSERT_TRUE(delta.ok());
    XY_EXPECT_OK(ValidateDelta(*delta));
  }
}

TEST(ValidateTest, DeleteWithoutSnapshot) {
  Delta delta;
  delta.deletes().emplace_back(3, 1, 1, nullptr);
  EXPECT_EQ(ValidateDelta(delta).code(), StatusCode::kCorruption);
}

TEST(ValidateTest, SnapshotRootXidMismatch) {
  Delta delta;
  delta.deletes().emplace_back(3, 1, 1, Snapshot(99));
  EXPECT_EQ(ValidateDelta(delta).code(), StatusCode::kCorruption);
}

TEST(ValidateTest, SnapshotWithUnassignedXid) {
  auto subtree = XmlNode::Element("p");
  subtree->set_xid(3);
  subtree->AppendChild(XmlNode::Text("x"));  // Child has no XID.
  Delta delta;
  delta.deletes().emplace_back(3, 1, 1, std::move(subtree));
  EXPECT_EQ(ValidateDelta(delta).code(), StatusCode::kCorruption);
}

TEST(ValidateTest, ZeroPositionRejected) {
  Delta delta;
  delta.deletes().emplace_back(3, 1, 0, Snapshot(3));
  EXPECT_FALSE(ValidateDelta(delta).ok());

  Delta delta2;
  delta2.moves().push_back(MoveOp{3, 1, 0, 2, 1});
  EXPECT_FALSE(ValidateDelta(delta2).ok());
}

TEST(ValidateTest, DoubleDeleteRejected) {
  Delta delta;
  delta.deletes().emplace_back(3, 1, 1, Snapshot(3));
  delta.deletes().emplace_back(3, 1, 2, Snapshot(3));
  EXPECT_FALSE(ValidateDelta(delta).ok());
}

TEST(ValidateTest, DeleteAndMoveSameNodeRejected) {
  Delta delta;
  delta.deletes().emplace_back(3, 1, 1, Snapshot(3));
  delta.moves().push_back(MoveOp{3, 1, 1, 2, 1});
  EXPECT_FALSE(ValidateDelta(delta).ok());
}

TEST(ValidateTest, InsertedXidBeyondAllocatorRejected) {
  Delta delta;
  delta.set_new_next_xid(5);
  delta.inserts().emplace_back(7, 1, 1, Snapshot(7));  // 7 >= 5.
  EXPECT_FALSE(ValidateDelta(delta).ok());
}

TEST(ValidateTest, InsertAndDeleteSameXidRejected) {
  Delta delta;
  delta.set_new_next_xid(100);
  delta.deletes().emplace_back(3, 1, 1, Snapshot(3));
  delta.inserts().emplace_back(3, 2, 1, Snapshot(3));
  EXPECT_FALSE(ValidateDelta(delta).ok());
}

TEST(ValidateTest, DoubleUpdateRejected) {
  Delta delta;
  delta.updates().push_back(UpdateOp{4, "a", "b"});
  delta.updates().push_back(UpdateOp{4, "b", "c"});
  EXPECT_FALSE(ValidateDelta(delta).ok());
}

TEST(ValidateTest, NoOpUpdateRejected) {
  Delta delta;
  delta.updates().push_back(UpdateOp{4, "same", "same"});
  EXPECT_FALSE(ValidateDelta(delta).ok());
}

TEST(ValidateTest, AttributeOpChecks) {
  {
    Delta delta;
    delta.attribute_ops().push_back({AttributeOpKind::kInsert, 0, "k", "", "v"});
    EXPECT_FALSE(ValidateDelta(delta).ok());  // No target.
  }
  {
    Delta delta;
    delta.attribute_ops().push_back({AttributeOpKind::kInsert, 3, "", "", "v"});
    EXPECT_FALSE(ValidateDelta(delta).ok());  // No name.
  }
  {
    Delta delta;
    delta.attribute_ops().push_back(
        {AttributeOpKind::kUpdate, 3, "k", "x", "x"});
    EXPECT_FALSE(ValidateDelta(delta).ok());  // No-op update.
  }
  {
    Delta delta;
    delta.attribute_ops().push_back(
        {AttributeOpKind::kUpdate, 3, "k", "x", "y"});
    delta.attribute_ops().push_back(
        {AttributeOpKind::kDelete, 3, "k", "y", ""});
    EXPECT_FALSE(ValidateDelta(delta).ok());  // Same attr twice.
  }
  {
    Delta delta;
    delta.attribute_ops().push_back(
        {AttributeOpKind::kUpdate, 3, "k", "x", "y"});
    delta.attribute_ops().push_back(
        {AttributeOpKind::kUpdate, 3, "j", "x", "y"});
    XY_EXPECT_OK(ValidateDelta(delta));  // Different attrs fine.
  }
}

TEST(ValidateTest, MoveOfVirtualRootRejected) {
  Delta delta;
  delta.moves().push_back(MoveOp{kNoXid, 1, 1, 2, 1});
  EXPECT_FALSE(ValidateDelta(delta).ok());
}

}  // namespace
}  // namespace xydiff
