#include "xml/parser.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xydiff {
namespace {

TEST(ParserTest, MinimalDocument) {
  XmlDocument doc = MustParse("<root/>");
  ASSERT_NE(doc.root(), nullptr);
  EXPECT_EQ(doc.root()->label(), "root");
  EXPECT_EQ(doc.root()->child_count(), 0u);
}

TEST(ParserTest, NestedElementsAndText) {
  XmlDocument doc = MustParse("<a><b>hello</b><c><d/></c></a>");
  const XmlNode* root = doc.root();
  ASSERT_EQ(root->child_count(), 2u);
  EXPECT_EQ(root->child(0)->label(), "b");
  ASSERT_EQ(root->child(0)->child_count(), 1u);
  EXPECT_EQ(root->child(0)->child(0)->text(), "hello");
  EXPECT_EQ(root->child(1)->child(0)->label(), "d");
}

TEST(ParserTest, Attributes) {
  XmlDocument doc = MustParse(R"(<e a="1" b='two' c="a&amp;b"/>)");
  EXPECT_EQ(*doc.root()->FindAttribute("a"), "1");
  EXPECT_EQ(*doc.root()->FindAttribute("b"), "two");
  EXPECT_EQ(*doc.root()->FindAttribute("c"), "a&b");
}

TEST(ParserTest, EntityReferences) {
  XmlDocument doc = MustParse("<t>&lt;tag&gt; &amp; &quot;q&quot; &apos;</t>");
  EXPECT_EQ(doc.root()->child(0)->text(), "<tag> & \"q\" '");
}

TEST(ParserTest, NumericCharacterReferences) {
  XmlDocument doc = MustParse("<t>&#65;&#x42;&#233;</t>");
  EXPECT_EQ(doc.root()->child(0)->text(), "AB\xC3\xA9");
}

TEST(ParserTest, Utf8MultibyteReferences) {
  // U+20AC euro sign (3 bytes), U+1F600 (4 bytes).
  XmlDocument doc = MustParse("<t>&#x20AC;&#x1F600;</t>");
  EXPECT_EQ(doc.root()->child(0)->text(), "\xE2\x82\xAC\xF0\x9F\x98\x80");
}

TEST(ParserTest, CdataSection) {
  XmlDocument doc = MustParse("<t><![CDATA[<not & parsed>]]></t>");
  EXPECT_EQ(doc.root()->child(0)->text(), "<not & parsed>");
}

TEST(ParserTest, CdataMergesWithAdjacentText) {
  XmlDocument doc = MustParse("<t>pre <![CDATA[mid]]> post</t>");
  ASSERT_EQ(doc.root()->child_count(), 1u);
  EXPECT_EQ(doc.root()->child(0)->text(), "pre mid post");
}

TEST(ParserTest, CommentsAreSkipped) {
  XmlDocument doc = MustParse("<a><!-- comment --><b/><!-- <fake/> --></a>");
  ASSERT_EQ(doc.root()->child_count(), 1u);
  EXPECT_EQ(doc.root()->child(0)->label(), "b");
}

TEST(ParserTest, ProcessingInstructionsSkipped) {
  XmlDocument doc =
      MustParse("<?xml version=\"1.0\"?><a><?target data?><b/></a>");
  ASSERT_EQ(doc.root()->child_count(), 1u);
}

TEST(ParserTest, WhitespaceOnlyTextDroppedByDefault) {
  XmlDocument doc = MustParse("<a>\n  <b/>\n  <c/>\n</a>");
  EXPECT_EQ(doc.root()->child_count(), 2u);
}

TEST(ParserTest, WhitespaceKeptWhenRequested) {
  ParseOptions options;
  options.keep_whitespace_text = true;
  Result<XmlDocument> doc = ParseXml("<a> <b/> </a>", options);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->child_count(), 3u);
}

TEST(ParserTest, MixedContentPreserved) {
  XmlDocument doc = MustParse("<p>before <b>bold</b> after</p>");
  ASSERT_EQ(doc.root()->child_count(), 3u);
  EXPECT_EQ(doc.root()->child(0)->text(), "before ");
  EXPECT_EQ(doc.root()->child(1)->label(), "b");
  EXPECT_EQ(doc.root()->child(2)->text(), " after");
}

TEST(ParserTest, DoctypeWithIdAttlist) {
  XmlDocument doc = MustParse(R"(<!DOCTYPE catalog [
    <!ELEMENT catalog (product*)>
    <!ATTLIST product ref ID #REQUIRED>
    <!ATTLIST product kind CDATA #IMPLIED>
    <!ATTLIST item code ID #IMPLIED other CDATA "dflt">
  ]>
  <catalog><product ref="p1"/></catalog>)");
  EXPECT_EQ(doc.dtd().doctype_name(), "catalog");
  ASSERT_NE(doc.dtd().IdAttributeFor("product"), nullptr);
  EXPECT_EQ(*doc.dtd().IdAttributeFor("product"), "ref");
  ASSERT_NE(doc.dtd().IdAttributeFor("item"), nullptr);
  EXPECT_EQ(*doc.dtd().IdAttributeFor("item"), "code");
  EXPECT_EQ(doc.dtd().IdAttributeFor("catalog"), nullptr);
}

TEST(ParserTest, DoctypeWithExternalIdSkipped) {
  XmlDocument doc = MustParse(
      "<!DOCTYPE html PUBLIC \"-//W3C//DTD\" \"http://x/[y]\"><html/>");
  EXPECT_EQ(doc.root()->label(), "html");
  EXPECT_EQ(doc.dtd().doctype_name(), "html");
}

TEST(ParserTest, AttlistEnumerationType) {
  XmlDocument doc = MustParse(R"(<!DOCTYPE r [
    <!ATTLIST e kind (a|b|c) "a" key ID #IMPLIED>
  ]><r/>)");
  ASSERT_NE(doc.dtd().IdAttributeFor("e"), nullptr);
  EXPECT_EQ(*doc.dtd().IdAttributeFor("e"), "key");
}

TEST(ParserTest, ErrorMismatchedTags) {
  Result<XmlDocument> doc = ParseXml("<a><b></a></b>");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("mismatched"), std::string::npos);
}

TEST(ParserTest, ErrorUnterminatedElement) {
  EXPECT_FALSE(ParseXml("<a><b>").ok());
}

TEST(ParserTest, ErrorDuplicateAttribute) {
  Result<XmlDocument> doc = ParseXml(R"(<a x="1" x="2"/>)");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("duplicate"), std::string::npos);
}

TEST(ParserTest, ErrorUnknownEntity) {
  EXPECT_FALSE(ParseXml("<a>&unknown;</a>").ok());
}

TEST(ParserTest, CustomEntityDeclarationAndExpansion) {
  XmlDocument doc = MustParse(R"(<!DOCTYPE r [
    <!ENTITY co "Xyleme S.A.">
  ]><r><t>Brought to you by &co;.</t></r>)");
  EXPECT_EQ(doc.root()->child(0)->child(0)->text(),
            "Brought to you by Xyleme S.A..");
}

TEST(ParserTest, EntityInAttributeValue) {
  XmlDocument doc = MustParse(R"(<!DOCTYPE r [
    <!ENTITY brand "ACME">
  ]><r owner="&brand; corp"/>)");
  EXPECT_EQ(*doc.root()->FindAttribute("owner"), "ACME corp");
}

TEST(ParserTest, NestedEntityExpansion) {
  XmlDocument doc = MustParse(R"(<!DOCTYPE r [
    <!ENTITY inner "deep &amp; nested">
    <!ENTITY outer "with &inner; value">
  ]><r><t>&outer;</t></r>)");
  EXPECT_EQ(doc.root()->child(0)->child(0)->text(),
            "with deep & nested value");
}

TEST(ParserTest, EntityCycleRejected) {
  Result<XmlDocument> doc = ParseXml(R"(<!DOCTYPE r [
    <!ENTITY a "&b;">
    <!ENTITY b "&a;">
  ]><r><t>&a;</t></r>)");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("deep"), std::string::npos);
}

TEST(ParserTest, EntityWithMarkupRejected) {
  Result<XmlDocument> doc = ParseXml(R"(<!DOCTYPE r [
    <!ENTITY frag "<item/>">
  ]><r>&frag;</r>)");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("markup"), std::string::npos);
}

TEST(ParserTest, ParameterAndExternalEntitiesSkipped) {
  // Neither declaration blows up the parse; uses of them are unknown.
  XmlDocument doc = MustParse(R"(<!DOCTYPE r [
    <!ENTITY % param "ignored">
    <!ENTITY ext SYSTEM "http://example.com/x.ent">
  ]><r/>)");
  EXPECT_EQ(doc.root()->label(), "r");
}

TEST(ParserTest, EntityWithCharacterReference) {
  XmlDocument doc = MustParse(R"(<!DOCTYPE r [
    <!ENTITY euro "&#x20AC;">
  ]><r><t>&euro;5</t></r>)");
  EXPECT_EQ(doc.root()->child(0)->child(0)->text(), "\xE2\x82\xAC""5");
}

TEST(ParserTest, ErrorBadCharacterReference) {
  EXPECT_FALSE(ParseXml("<a>&#xZZ;</a>").ok());
  EXPECT_FALSE(ParseXml("<a>&#99999999;</a>").ok());
}

TEST(ParserTest, ErrorTrailingContent) {
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
  EXPECT_FALSE(ParseXml("<a/>junk").ok());
}

TEST(ParserTest, ErrorEmptyInput) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("   ").ok());
}

TEST(ParserTest, ErrorAttributeSyntax) {
  EXPECT_FALSE(ParseXml("<a x=1/>").ok());        // Unquoted.
  EXPECT_FALSE(ParseXml("<a x/>").ok());          // No value.
  EXPECT_FALSE(ParseXml("<a x=\"1/>").ok());      // Unterminated.
  EXPECT_FALSE(ParseXml("<a x=\"<\"/>").ok());    // '<' in value.
}

TEST(ParserTest, ErrorMessageHasLineAndColumn) {
  Result<XmlDocument> doc = ParseXml("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("line 3"), std::string::npos);
}

TEST(ParserTest, DepthLimit) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "<d>";
  deep += "x";
  for (int i = 0; i < 200; ++i) deep += "</d>";
  ParseOptions options;
  options.max_depth = 100;
  EXPECT_FALSE(ParseXml(deep, options).ok());
  options.max_depth = 500;
  EXPECT_TRUE(ParseXml(deep, options).ok());
}

TEST(ParserTest, NamespacePrefixesKeptVerbatim) {
  XmlDocument doc = MustParse("<ns:a xmlns:ns=\"urn:x\"><ns:b/></ns:a>");
  EXPECT_EQ(doc.root()->label(), "ns:a");
  EXPECT_EQ(doc.root()->child(0)->label(), "ns:b");
}

TEST(ParserTest, ParseFileNotFound) {
  Result<XmlDocument> doc = ParseXmlFile("/nonexistent/path.xml");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kNotFound);
}

// --- Hostile entity / DTD hardening -----------------------------------------
//
// The expansion contract: a hostile internal subset gets a clean
// ParseError naming the rejected construct — never an expansion
// blow-up, a fetch, or a crash. Positive controls pin the bounds from
// the other side so the defaults do not silently break benign inputs.

TEST(ParserTest, EntityExpansionBillionLaughsRejected) {
  // 10 chained levels, fanout 10: one &e10; is 10^10 bytes from ~400
  // bytes of input. Must reject quickly via the cumulative byte budget.
  std::string xml = "<!DOCTYPE b [<!ENTITY e0 \"xx\">";
  for (int l = 1; l <= 10; ++l) {
    xml += "<!ENTITY e" + std::to_string(l) + " \"";
    for (int i = 0; i < 10; ++i) xml += "&e" + std::to_string(l - 1) + ";";
    xml += "\">";
  }
  xml += "]><b>&e10;</b>";
  Result<XmlDocument> doc = ParseXml(xml);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("entity expansion exceeds"),
            std::string::npos)
      << doc.status().ToString();
}

TEST(ParserTest, EntityExpansionBudgetIsCumulativeAcrossReferences) {
  // Each reference is small; many of them must still trip the
  // document-wide budget (a per-reference bound would not).
  std::string xml = "<!DOCTYPE b [<!ENTITY e \"0123456789\">]><b>";
  for (int i = 0; i < 200; ++i) xml += "<t>&e;</t>";
  xml += "</b>";
  ParseOptions options;
  options.max_entity_expansion_bytes = 1000;  // 200 refs x 10 bytes > 1000.
  Result<XmlDocument> doc = ParseXml(xml, options);
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("entity expansion exceeds"),
            std::string::npos);
  // The same document passes with the (much larger) default budget.
  EXPECT_TRUE(ParseXml(xml).ok());
}

TEST(ParserTest, EntityExpansionChargesCharacterReferenceBytes) {
  // Amplified chains bottom out in character references; those bytes
  // must be charged too or "&#120;" chains dodge the budget.
  std::string xml = "<!DOCTYPE b [<!ENTITY e0 \"&#120;&#120;\">";
  for (int l = 1; l <= 10; ++l) {
    xml += "<!ENTITY e" + std::to_string(l) + " \"";
    for (int i = 0; i < 10; ++i) xml += "&e" + std::to_string(l - 1) + ";";
    xml += "\">";
  }
  xml += "]><b>&e10;</b>";
  Result<XmlDocument> doc = ParseXml(xml);
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("entity expansion exceeds"),
            std::string::npos);
}

TEST(ParserTest, EntityReferenceCycleRejected) {
  Result<XmlDocument> doc = ParseXml(
      "<!DOCTYPE b [<!ENTITY a \"&b;\"><!ENTITY b \"&a;\">]><b>&a;</b>");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("too deep"), std::string::npos)
      << doc.status().ToString();
}

TEST(ParserTest, ExternalEntityReferenceRejectedByName) {
  Result<XmlDocument> doc = ParseXml(
      "<!DOCTYPE b [<!ENTITY ext SYSTEM \"file:///etc/passwd\">]>"
      "<b>&ext;</b>");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("external entity"), std::string::npos)
      << doc.status().ToString();
  // Inside another entity's value, same rejection.
  Result<XmlDocument> nested = ParseXml(
      "<!DOCTYPE b [<!ENTITY ext SYSTEM \"x\"><!ENTITY e \"&ext;\">]>"
      "<b>&e;</b>");
  ASSERT_FALSE(nested.ok());
  EXPECT_NE(nested.status().message().find("external entity"),
            std::string::npos);
}

TEST(ParserTest, ZeroBudgetDisablesCustomEntityExpansion) {
  ParseOptions options;
  options.max_entity_expansion_bytes = 0;
  Result<XmlDocument> doc = ParseXml(
      "<!DOCTYPE b [<!ENTITY e \"v\">]><b>&e;</b>", options);
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("disabled"), std::string::npos)
      << doc.status().ToString();
  // Predefined and character references are unaffected by the switch.
  EXPECT_TRUE(ParseXml("<b>&amp;&#65;</b>", options).ok());
  // As is a document that declares but never references an entity.
  EXPECT_TRUE(
      ParseXml("<!DOCTYPE b [<!ENTITY e \"v\">]><b>x</b>", options).ok());
}

TEST(ParserTest, BenignEntityUseStillWorks) {
  // Positive control: ordinary entity use is far below every bound.
  XmlDocument doc = MustParse(
      "<!DOCTYPE b [<!ENTITY co \"Example &amp; Sons\">]>"
      "<b><name>&co;</name><name>&co;</name></b>");
  EXPECT_EQ(doc.root()->child(0)->child(0)->text(), "Example & Sons");
  EXPECT_EQ(doc.root()->child(1)->child(0)->text(), "Example & Sons");
}

TEST(ParserTest, EntityDepthLimitConfigurable) {
  // A benign 20-deep chain: rejected at the default depth 16, accepted
  // when the knob is raised.
  std::string xml = "<!DOCTYPE b [<!ENTITY e0 \"x\">";
  for (int l = 1; l <= 20; ++l) {
    xml += "<!ENTITY e" + std::to_string(l) + " \"&e" +
           std::to_string(l - 1) + ";\">";
  }
  xml += "]><b>&e20;</b>";
  EXPECT_FALSE(ParseXml(xml).ok());
  ParseOptions options;
  options.max_entity_depth = 32;
  Result<XmlDocument> doc = ParseXml(xml, options);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->root()->child(0)->text(), "x");
}

}  // namespace
}  // namespace xydiff
