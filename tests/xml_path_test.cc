#include "xml/path.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xydiff {
namespace {

XmlPath MustParsePath(std::string_view expr) {
  Result<XmlPath> path = XmlPath::Parse(expr);
  EXPECT_TRUE(path.ok()) << path.status().ToString();
  return std::move(path.value());
}

TEST(XmlPathTest, AbsoluteChildPath) {
  XmlDocument doc = MustParse("<a><b><c/></b><c/></a>");
  XmlPath path = MustParsePath("/a/b/c");
  const auto hits = path.FindAll(*doc.root());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], doc.root()->child(0)->child(0));
}

TEST(XmlPathTest, RootMustAnchor) {
  XmlDocument doc = MustParse("<a><a><b/></a></a>");
  // "/a/b" matches only b under the root's direct "a"? The root IS "a";
  // "/a/b" = root a, then child b: the inner <b/> is at depth 2, so no.
  XmlPath path = MustParsePath("/a/b");
  EXPECT_TRUE(path.FindAll(*doc.root()).empty());
  XmlPath deeper = MustParsePath("/a/a/b");
  EXPECT_EQ(deeper.FindAll(*doc.root()).size(), 1u);
}

TEST(XmlPathTest, DescendantAxis) {
  XmlDocument doc = MustParse("<r><x><p/></x><y><z><p/></z></y></r>");
  XmlPath path = MustParsePath("//p");
  EXPECT_EQ(path.FindAll(*doc.root()).size(), 2u);
}

TEST(XmlPathTest, DescendantMidPath) {
  XmlDocument doc = MustParse("<r><a><deep><b/></deep></a><b/></r>");
  XmlPath path = MustParsePath("/r//b");
  EXPECT_EQ(path.FindAll(*doc.root()).size(), 2u);
  XmlPath strict = MustParsePath("/r/a//b");
  EXPECT_EQ(strict.FindAll(*doc.root()).size(), 1u);
}

TEST(XmlPathTest, Wildcard) {
  XmlDocument doc = MustParse("<r><a/><b/><c><d/></c></r>");
  XmlPath path = MustParsePath("/r/*");
  EXPECT_EQ(path.FindAll(*doc.root()).size(), 3u);
}

TEST(XmlPathTest, AttributePredicate) {
  XmlDocument doc = MustParse(
      R"(<cat><p status="new"/><p status="old"/><p/></cat>)");
  XmlPath path = MustParsePath("/cat/p[@status='new']");
  ASSERT_EQ(path.FindAll(*doc.root()).size(), 1u);
  EXPECT_EQ(*path.FindAll(*doc.root())[0]->FindAttribute("status"), "new");
}

TEST(XmlPathTest, MatchesSingleNode) {
  XmlDocument doc = MustParse("<a><b/></a>");
  XmlPath path = MustParsePath("/a/b");
  EXPECT_TRUE(path.Matches(*doc.root()->child(0)));
  EXPECT_FALSE(path.Matches(*doc.root()));
}

TEST(XmlPathTest, TextNodesNeverMatch) {
  XmlDocument doc = MustParse("<a><b>text</b></a>");
  XmlPath path = MustParsePath("//b");
  EXPECT_EQ(path.FindAll(*doc.root()).size(), 1u);
  XmlPath wild = MustParsePath("//*");
  // a and b, but not the text node.
  EXPECT_EQ(wild.FindAll(*doc.root()).size(), 2u);
}

TEST(XmlPathTest, TextPredicate) {
  XmlDocument doc = MustParse(
      "<cat><Product><Name>zy456</Name></Product>"
      "<Product><Name>abc</Name></Product></cat>");
  XmlPath path = MustParsePath("//Name[text()='zy456']");
  const auto hits = path.FindAll(*doc.root());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->child(0)->text(), "zy456");
}

TEST(XmlPathTest, TextPredicateMidPath) {
  XmlDocument doc = MustParse(
      "<r><sec><title>Intro</title><p>a</p></sec>"
      "<sec><title>Outro</title><p>b</p></sec></r>");
  // Select the <title> of the Intro section only.
  XmlPath path = MustParsePath("/r/sec/title[text()='Intro']");
  ASSERT_EQ(path.FindAll(*doc.root()).size(), 1u);
}

TEST(XmlPathTest, TextPredicateConcatenatesDirectText) {
  XmlDocument doc = MustParse("<r><t>ab<i/>cd</t></r>");
  XmlPath path = MustParsePath("//t[text()='abcd']");
  EXPECT_EQ(path.FindAll(*doc.root()).size(), 1u);
  // Nested text does not count.
  XmlDocument doc2 = MustParse("<r><t><i>abcd</i></t></r>");
  EXPECT_TRUE(path.FindAll(*doc2.root()).empty());
}

TEST(XmlPathTest, TextPredicateEmptyValue) {
  XmlDocument doc = MustParse("<r><empty/><full>x</full></r>");
  XmlPath path = MustParsePath("/r/*[text()='']");
  ASSERT_EQ(path.FindAll(*doc.root()).size(), 1u);
  EXPECT_EQ(path.FindAll(*doc.root())[0]->label(), "empty");
}

TEST(XmlPathTest, TextPredicateParseErrors) {
  EXPECT_FALSE(XmlPath::Parse("/a[text()=x]").ok());
  EXPECT_FALSE(XmlPath::Parse("/a[text()='x]").ok());
  EXPECT_FALSE(XmlPath::Parse("/a[text()='x'").ok());
}

TEST(XmlPathTest, ParseErrors) {
  EXPECT_FALSE(XmlPath::Parse("").ok());
  EXPECT_FALSE(XmlPath::Parse("relative/path").ok());
  EXPECT_FALSE(XmlPath::Parse("/a/").ok());
  EXPECT_FALSE(XmlPath::Parse("/a[@x]").ok());
  EXPECT_FALSE(XmlPath::Parse("/a[@x='unterminated]").ok());
  EXPECT_FALSE(XmlPath::Parse("/a[x='1']").ok());
}

TEST(XmlPathTest, ExpressionAccessor) {
  XmlPath path = MustParsePath("/a/b");
  EXPECT_EQ(path.expression(), "/a/b");
}

TEST(XmlPathTest, PaperSubscriptionExample) {
  // "a new product has been added to a catalog" (§2).
  XmlDocument doc = MustParse(
      "<Category><NewProducts><Product><Name>zy</Name></Product>"
      "</NewProducts></Category>");
  XmlPath path = MustParsePath("/Category/NewProducts/Product");
  EXPECT_EQ(path.FindAll(*doc.root()).size(), 1u);
}

}  // namespace
}  // namespace xydiff
