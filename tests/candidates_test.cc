#include "core/candidates.h"

#include "delta/signature.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xydiff {
namespace {

struct Fixture {
  XmlDocument doc;
  LabelTable labels;
  DiffTree tree;

  explicit Fixture(std::string_view xml) {
    doc = MustParse(xml);
    tree = DiffTree::Build(&doc, &labels);
    DiffOptions options;
    ComputeSignaturesAndWeights(&tree, options);
  }
};

TEST(CandidateIndexTest, FindBySignature) {
  // Three identical <p>x</p> subtrees: nodes 1,3,5 (texts 2,4,6).
  Fixture f("<r><p>x</p><p>x</p><p>x</p></r>");
  CandidateIndex index(&f.tree);
  const std::vector<NodeIndex>* hits = index.Find(f.tree.signature(1));
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(*hits, (std::vector<NodeIndex>{1, 3, 5}));
  EXPECT_EQ(index.Find(0xDEADBEEF), nullptr);
}

TEST(CandidateIndexTest, FindUnmatchedWithParent) {
  Fixture f("<r><a><p>x</p></a><b><p>x</p></b></r>");
  // Nodes: r=0 a=1 p=2 x=3 b=4 p=5 x=6.
  CandidateIndex index(&f.tree);
  const Signature sig = f.tree.signature(2);
  EXPECT_EQ(index.FindUnmatchedWithParent(sig, 1), 2);
  EXPECT_EQ(index.FindUnmatchedWithParent(sig, 4), 5);
  EXPECT_EQ(index.FindUnmatchedWithParent(sig, 0), kInvalidNode);
}

TEST(CandidateIndexTest, SkipsMatchedCandidates) {
  Fixture f("<r><p>x</p><p>x</p></r>");
  CandidateIndex index(&f.tree);
  const Signature sig = f.tree.signature(1);
  EXPECT_EQ(index.FindUnmatchedWithParent(sig, 0), 1);
  f.tree.set_match(1, 99);
  EXPECT_EQ(index.FindUnmatchedWithParent(sig, 0), 3);
  f.tree.set_match(3, 98);
  EXPECT_EQ(index.FindUnmatchedWithParent(sig, 0), kInvalidNode);
}

TEST(CandidateIndexTest, SkipsIdLockedCandidates) {
  Fixture f("<r><p>x</p></r>");
  CandidateIndex index(&f.tree);
  const Signature sig = f.tree.signature(1);
  f.tree.set_id_locked(1);
  EXPECT_EQ(index.FindUnmatchedWithParent(sig, 0), kInvalidNode);
}

TEST(CandidateIndexTest, PrefersSamePosition) {
  // Identical siblings at positions 0,1,2; a reference node at position
  // 2 should get the position-2 candidate (§5.1: position plays a role).
  Fixture f("<r><p>x</p><p>x</p><p>x</p></r>");
  CandidateIndex index(&f.tree);
  const Signature sig = f.tree.signature(1);
  EXPECT_EQ(index.FindUnmatchedWithParent(sig, 0, 2), 5);
  EXPECT_EQ(index.FindUnmatchedWithParent(sig, 0, 1), 3);
  // Preferred position occupied -> fall back to first free.
  f.tree.set_match(5, 99);
  EXPECT_EQ(index.FindUnmatchedWithParent(sig, 0, 2), 1);
  // No preference -> first free.
  EXPECT_EQ(index.FindUnmatchedWithParent(sig, 0), 1);
}

TEST(CandidateIndexTest, RootHasNoParentEntry) {
  Fixture f("<r><p>x</p></r>");
  CandidateIndex index(&f.tree);
  // The root's signature exists in the primary index...
  ASSERT_NE(index.Find(f.tree.signature(0)), nullptr);
  // ...but no by-parent entry can reach it.
  EXPECT_EQ(index.FindUnmatchedWithParent(f.tree.signature(0), 0),
            kInvalidNode);
}

}  // namespace
}  // namespace xydiff
