// Crash-consistency sweep for the versioned store (DESIGN.md §3.12).
//
// The contract under test: SaveRepository through any Env is atomic —
// whatever single operation fails (EIO), crashes the process, or tears
// mid-write, reopening the directory yields either the pre-save or the
// post-save repository, bit-exactly (XIDs included), never a hybrid.
//
// The sweep is exhaustive, not sampled: every operation index is tried
// until a run completes without its fault triggering (meaning the index
// walked off the end of the protocol), and torn writes additionally
// sweep byte offsets. FaultInjectionEnv rolls un-synced data back the
// way a machine reset would, so the reopened state is what a real crash
// would have left on disk.

#include "util/fault_env.h"

#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "version/storage.h"
#include "version/warehouse.h"
#include "xml/serializer.h"

namespace xydiff {
namespace {

namespace fs = std::filesystem;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("xydiff_fault_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Dir() const { return dir_.string(); }

  fs::path dir_;
};

/// The full byte-exact identity of a repository: every version,
/// serialized with XIDs. Two repositories with equal signatures are
/// indistinguishable to every consumer.
std::vector<std::string> Signature(const VersionRepository& repo) {
  std::vector<std::string> out;
  SerializeOptions options;
  options.emit_xids = true;
  for (int v = 1; v <= repo.version_count(); ++v) {
    Result<XmlDocument> doc = repo.Checkout(v);
    EXPECT_TRUE(doc.ok()) << doc.status().ToString();
    out.push_back(doc.ok() ? SerializeDocument(*doc, options)
                           : std::string());
  }
  return out;
}

VersionRepository MakeRepo(uint64_t seed, int extra_versions) {
  Rng rng(seed);
  DocGenOptions gen;
  gen.target_bytes = 512;
  VersionRepository repo(GenerateDocument(&rng, gen));
  for (int v = 0; v < extra_versions; ++v) {
    Result<SimulatedChange> change =
        SimulateChanges(repo.current(), ChangeSimOptions{}, &rng);
    EXPECT_TRUE(change.ok());
    EXPECT_TRUE(repo.Commit(std::move(change->new_version)).ok());
  }
  return repo;
}

/// One crash-point probe: commit `before` durably, arm `plan`, attempt
/// to save `after`, crash, reopen, and require the reopened store to be
/// bit-exactly `before` or `after`. Returns false once the armed fault
/// no longer triggers (the sweep is past the end of the protocol).
bool ProbeCrashPoint(const std::string& dir, const VersionRepository& before,
                     const VersionRepository& after,
                     const std::vector<std::string>& sig_before,
                     const std::vector<std::string>& sig_after,
                     const std::function<void(FaultInjectionEnv&)>& plan) {
  fs::remove_all(dir);
  FaultInjectionEnv env;
  XY_EXPECT_OK(SaveRepository(before, dir, &env));
  env.Reset();  // Disk state stands; forget counters and durable images.

  plan(env);
  const Status saved = SaveRepository(after, dir, &env);
  const bool triggered = env.triggered();
  XY_EXPECT_OK(env.DropUnsyncedData());

  RecoveryReport report;
  Result<VersionRepository> reopened =
      LoadRepository(dir, nullptr, &report);
  EXPECT_TRUE(reopened.ok())
      << reopened.status().ToString() << "\n" << report.ToString();
  if (reopened.ok()) {
    const std::vector<std::string> sig = Signature(*reopened);
    EXPECT_TRUE(sig == sig_before || sig == sig_after)
        << "reopened store is a hybrid: " << sig.size() << " version(s), "
        << report.ToString();
    if (saved.ok()) {
      // SaveRepository reported success — whether because no fault
      // fired or because the fault only hit the best-effort post-commit
      // cleanup — so the new state is committed and must read back.
      EXPECT_TRUE(sig == sig_after) << report.ToString();
    }
  }
  return triggered;
}

TEST_F(FaultInjectionTest, CrashAtEveryOperationYieldsOldOrNew) {
  const VersionRepository before = MakeRepo(21, 2);
  VersionRepository after = MakeRepo(21, 2);
  {
    Rng rng(99);
    Result<SimulatedChange> change =
        SimulateChanges(after.current(), ChangeSimOptions{}, &rng);
    ASSERT_TRUE(change.ok());
    ASSERT_TRUE(after.Commit(std::move(change->new_version)).ok());
  }
  const std::vector<std::string> sig_before = Signature(before);
  const std::vector<std::string> sig_after = Signature(after);
  ASSERT_NE(sig_before, sig_after);

  int op = 0;
  for (; op < 10000; ++op) {
    if (!ProbeCrashPoint(Dir(), before, after, sig_before, sig_after,
                         [op](FaultInjectionEnv& env) { env.CrashAt(op); })) {
      break;
    }
  }
  // The sweep must have covered a real protocol (several ops) and
  // terminated by walking off its end, not by exhausting the loop.
  EXPECT_GT(op, 3);
  EXPECT_LT(op, 10000);
}

TEST_F(FaultInjectionTest, TornWriteAtEveryOffsetYieldsOldOrNew) {
  const VersionRepository before = MakeRepo(22, 1);
  VersionRepository after = MakeRepo(22, 1);
  {
    Rng rng(100);
    Result<SimulatedChange> change =
        SimulateChanges(after.current(), ChangeSimOptions{}, &rng);
    ASSERT_TRUE(change.ok());
    ASSERT_TRUE(after.Commit(std::move(change->new_version)).ok());
  }
  const std::vector<std::string> sig_before = Signature(before);
  const std::vector<std::string> sig_after = Signature(after);
  ASSERT_NE(sig_before, sig_after);

  // Every op index; at each, three tear offsets (nothing lands, one
  // byte lands, half the payload lands). Non-write ops degrade to a
  // plain crash, so the sweep stays exhaustive over op indices.
  for (const size_t keep : {size_t{0}, size_t{1}, size_t{4096}}) {
    int op = 0;
    for (; op < 10000; ++op) {
      if (!ProbeCrashPoint(
              Dir(), before, after, sig_before, sig_after,
              [op, keep](FaultInjectionEnv& env) {
                env.TearWriteAt(op, keep);
              })) {
        break;
      }
    }
    EXPECT_GT(op, 3) << "keep=" << keep;
    EXPECT_LT(op, 10000) << "keep=" << keep;
  }
}

/// An indexed repository: checkpoint pinned, then grown so the save
/// protocol emits the checkpoint pair and at least two skip levels
/// alongside the chain (8 deltas -> spans 2, 4, 8).
VersionRepository MakeIndexedRepo(uint64_t seed, int extra_versions) {
  VersionRepository repo = MakeRepo(seed, 0);
  EXPECT_TRUE(repo.EnsureReconstructionIndex().ok());
  Rng rng(seed + 5000);
  for (int v = 0; v < extra_versions; ++v) {
    Result<SimulatedChange> change =
        SimulateChanges(repo.current(), ChangeSimOptions{}, &rng);
    EXPECT_TRUE(change.ok());
    EXPECT_TRUE(repo.Commit(std::move(change->new_version)).ok());
  }
  return repo;
}

TEST_F(FaultInjectionTest, IndexedCrashAtEveryOperationYieldsOldOrNew) {
  // Same contract as the plain sweep, over the larger indexed protocol:
  // chain + checkpoint pair + skip files. A crash anywhere — including
  // mid-checkpoint or mid-skip write — must reopen as pre- or post-save;
  // a load that sheds the derived index still counts as that epoch
  // because every version reconstructs bit-exactly over the plain chain.
  const VersionRepository before = MakeIndexedRepo(25, 8);
  VersionRepository after = MakeIndexedRepo(25, 8);
  {
    Rng rng(103);
    Result<SimulatedChange> change =
        SimulateChanges(after.current(), ChangeSimOptions{}, &rng);
    ASSERT_TRUE(change.ok());
    ASSERT_TRUE(after.Commit(std::move(change->new_version)).ok());
  }
  ASSERT_GE(after.reconstruction_index().levels.size(), 2u);
  const std::vector<std::string> sig_before = Signature(before);
  const std::vector<std::string> sig_after = Signature(after);
  ASSERT_NE(sig_before, sig_after);

  int op = 0;
  for (; op < 10000; ++op) {
    if (!ProbeCrashPoint(Dir(), before, after, sig_before, sig_after,
                         [op](FaultInjectionEnv& env) { env.CrashAt(op); })) {
      break;
    }
  }
  // The indexed protocol writes strictly more files than the plain one
  // (plain saves walk off after a handful of ops), so the sweep length
  // itself proves the checkpoint and skip writes were inside it.
  EXPECT_GT(op, 10);
  EXPECT_LT(op, 10000);
}

TEST_F(FaultInjectionTest, IndexedTornWriteAtEveryOffsetYieldsOldOrNew) {
  const VersionRepository before = MakeIndexedRepo(26, 8);
  VersionRepository after = MakeIndexedRepo(26, 8);
  {
    Rng rng(104);
    Result<SimulatedChange> change =
        SimulateChanges(after.current(), ChangeSimOptions{}, &rng);
    ASSERT_TRUE(change.ok());
    ASSERT_TRUE(after.Commit(std::move(change->new_version)).ok());
  }
  const std::vector<std::string> sig_before = Signature(before);
  const std::vector<std::string> sig_after = Signature(after);
  ASSERT_NE(sig_before, sig_after);

  // Tear offsets land inside every payload class: nothing, one byte
  // (slices varints mid-group in binary deltas and skip files), and
  // 512 bytes (mid-checkpoint XML). Non-write ops degrade to a plain
  // crash, keeping the sweep exhaustive over op indices.
  for (const size_t keep : {size_t{0}, size_t{1}, size_t{512}}) {
    int op = 0;
    for (; op < 10000; ++op) {
      if (!ProbeCrashPoint(
              Dir(), before, after, sig_before, sig_after,
              [op, keep](FaultInjectionEnv& env) {
                env.TearWriteAt(op, keep);
              })) {
        break;
      }
    }
    EXPECT_GT(op, 10) << "keep=" << keep;
    EXPECT_LT(op, 10000) << "keep=" << keep;
  }
}

TEST_F(FaultInjectionTest, TransientErrorAtEveryOperationIsRecoverable) {
  const VersionRepository before = MakeRepo(23, 1);
  VersionRepository after = MakeRepo(23, 1);
  {
    Rng rng(101);
    Result<SimulatedChange> change =
        SimulateChanges(after.current(), ChangeSimOptions{}, &rng);
    ASSERT_TRUE(change.ok());
    ASSERT_TRUE(after.Commit(std::move(change->new_version)).ok());
  }
  const std::vector<std::string> sig_before = Signature(before);
  const std::vector<std::string> sig_after = Signature(after);

  for (int op = 0; op < 10000; ++op) {
    fs::remove_all(dir_);
    FaultInjectionEnv env;
    XY_ASSERT_OK(SaveRepository(before, Dir(), &env));
    env.Reset();
    env.InjectErrorAt(op);
    const Status saved = SaveRepository(after, Dir(), &env);
    if (!env.triggered()) {
      XY_EXPECT_OK(saved);
      break;
    }
    // A transient error is not a crash: nothing is lost, and simply
    // retrying the save must succeed and commit the new state.
    env.Reset();
    XY_ASSERT_OK(SaveRepository(after, Dir(), &env));
    RecoveryReport report;
    Result<VersionRepository> reopened =
        LoadRepository(Dir(), nullptr, &report);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_TRUE(Signature(*reopened) == sig_after)
        << "after retry at op " << op << ": " << report.ToString();
  }
}

TEST_F(FaultInjectionTest, CrashDuringSaveNeverLosesCommittedHistory) {
  // Chain growth across several save/load/diff cycles with a crash in
  // the middle of each save: versions committed by a *previous*
  // successful save survive every later crash.
  VersionRepository repo = MakeRepo(24, 0);
  Rng rng(102);
  std::vector<std::string> durable_sig;  // Signature of last durable save.
  for (int round = 0; round < 4; ++round) {
    Result<SimulatedChange> change =
        SimulateChanges(repo.current(), ChangeSimOptions{}, &rng);
    ASSERT_TRUE(change.ok());
    ASSERT_TRUE(repo.Commit(std::move(change->new_version)).ok());

    FaultInjectionEnv env;
    env.CrashAt(3 + round);  // A different mid-protocol point each round.
    const Status saved = SaveRepository(repo, Dir(), &env);
    XY_EXPECT_OK(env.DropUnsyncedData());

    RecoveryReport report;
    Result<VersionRepository> reopened =
        LoadRepository(Dir(), nullptr, &report);
    if (round == 0 && !saved.ok()) {
      // Nothing durable yet: an empty directory (NotFound) is the only
      // acceptable "old" state.
      if (!reopened.ok()) {
        EXPECT_EQ(reopened.status().code(), StatusCode::kNotFound);
      }
    } else if (!durable_sig.empty()) {
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      const std::vector<std::string> sig = Signature(*reopened);
      EXPECT_TRUE(sig == durable_sig || sig == Signature(repo))
          << "round " << round << ": " << report.ToString();
    }

    // Heal: complete the save for real, then verify a clean round trip.
    env.Reset();
    XY_ASSERT_OK(SaveRepository(repo, Dir(), &env));
    Result<VersionRepository> loaded = LoadRepository(Dir());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    durable_sig = Signature(*loaded);
    EXPECT_TRUE(durable_sig == Signature(repo)) << "round " << round;
  }
}

TEST_F(FaultInjectionTest, DiffBatchRetriesTransientStoreErrors) {
  FaultInjectionEnv env;
  // The first two env operations fail: the store stage's first
  // persistence attempt dies, the bounded retry then succeeds.
  env.InjectErrorAt(0, 2);

  Warehouse warehouse;
  ASSERT_TRUE(
      warehouse.Ingest("doc", MustParse("<d><t>one</t></d>")).ok());

  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 1;
  pipeline.save_directory = Dir();
  pipeline.env = &env;
  pipeline.max_io_retries = 3;
  pipeline.retry_backoff_ms = 1;

  std::vector<Warehouse::DiffJob> jobs;
  jobs.push_back({"doc", "<d><t>two</t></d>"});
  PipelineStats stats;
  const auto results =
      warehouse.DiffBatch(std::move(jobs), pipeline, &stats);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  EXPECT_FALSE(results[0]->store_degraded);
  EXPECT_GE(results[0]->store_retries, 1u);
  ASSERT_EQ(stats.stages.size(), 3u);
  EXPECT_GE(stats.stages[2].retries, 1u);
  EXPECT_EQ(stats.stages[2].failed, 0u);
  EXPECT_EQ(stats.degraded_slots, 1u);  // Degraded = needed retries.

  // The persisted store is loadable and current.
  RecoveryReport report;
  Result<VersionRepository> reopened =
      LoadRepository(Dir() + "/doc", nullptr, &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(report.clean) << report.ToString();
  EXPECT_EQ(reopened->version_count(), 2);
}

TEST_F(FaultInjectionTest, DiffBatchMarksSlotDegradedWhenRetriesExhaust) {
  FaultInjectionEnv env;
  env.InjectErrorAt(0, 1000);  // Persistence can never succeed.

  Warehouse warehouse;
  ASSERT_TRUE(
      warehouse.Ingest("doc", MustParse("<d><t>one</t></d>")).ok());

  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 1;
  pipeline.save_directory = Dir();
  pipeline.env = &env;
  pipeline.max_io_retries = 2;
  pipeline.retry_backoff_ms = 1;

  std::vector<Warehouse::DiffJob> jobs;
  jobs.push_back({"doc", "<d><t>two</t></d>"});
  PipelineStats stats;
  const auto results =
      warehouse.DiffBatch(std::move(jobs), pipeline, &stats);
  ASSERT_EQ(results.size(), 1u);
  // The in-memory ingest stands — degradation is loud but not fatal.
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  EXPECT_TRUE(results[0]->store_degraded);
  EXPECT_EQ(results[0]->store_retries, 2u);
  EXPECT_EQ(warehouse.version_count("doc"), 2);
  EXPECT_EQ(stats.degraded_slots, 1u);
  ASSERT_EQ(stats.stages.size(), 3u);
  EXPECT_EQ(stats.stages[2].failed, 1u);
}

TEST_F(FaultInjectionTest, FailFastAbortsRemainingSlots) {
  Warehouse warehouse;
  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 1;  // Deterministic slot order.
  pipeline.fail_fast = true;

  std::vector<Warehouse::DiffJob> jobs;
  jobs.push_back({"bad", "<broken"});
  jobs.push_back({"good1", "<d/>"});
  jobs.push_back({"good2", "<d/>"});
  const auto results = warehouse.DiffBatch(std::move(jobs), pipeline);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].status().code(), StatusCode::kParseError);
  EXPECT_EQ(results[1].status().code(), StatusCode::kAborted);
  EXPECT_EQ(results[2].status().code(), StatusCode::kAborted);
}

/// Probes one fault point of a 3-slot SaveRepositoryBatch: seed every
/// slot with its pre-batch repository, arm the fault, run the batched
/// save, "crash" (drop un-synced data), recover the parent directory,
/// and reload every slot. The batch contract: ALL slots read back
/// pre-batch or ALL read back post-batch — a mix is a torn group
/// commit. Returns false once the armed fault no longer triggers.
bool ProbeBatchFaultPoint(
    const std::string& parent, const std::vector<VersionRepository>& before,
    const std::vector<VersionRepository>& after,
    const std::vector<std::vector<std::string>>& sig_before,
    const std::vector<std::vector<std::string>>& sig_after,
    const std::function<void(FaultInjectionEnv&)>& plan,
    const Context* context = nullptr) {
  fs::remove_all(parent);
  FaultInjectionEnv env;
  std::vector<RepositorySaveSlot> seed;
  for (size_t i = 0; i < before.size(); ++i) {
    seed.push_back({&before[i], "slot" + std::to_string(i)});
  }
  XY_EXPECT_OK(SaveRepositoryBatch(seed, parent, &env));
  env.Reset();  // Disk state stands; forget counters and durable images.

  plan(env);
  std::vector<RepositorySaveSlot> slots;
  for (size_t i = 0; i < after.size(); ++i) {
    slots.push_back({&after[i], "slot" + std::to_string(i)});
  }
  const Status saved = SaveRepositoryBatch(slots, parent, &env, context);
  const bool triggered = env.triggered();
  XY_EXPECT_OK(env.DropUnsyncedData());

  // The reopen path: roll the batch journal forward (or discard a torn
  // one), exactly what Warehouse::Load does before touching any slot.
  XY_EXPECT_OK(RecoverRepositoryBatch(parent));

  size_t pre = 0, post = 0;
  for (size_t i = 0; i < after.size(); ++i) {
    RecoveryReport report;
    Result<VersionRepository> reopened = LoadRepository(
        parent + "/slot" + std::to_string(i), nullptr, &report);
    EXPECT_TRUE(reopened.ok())
        << reopened.status().ToString() << "\n" << report.ToString();
    if (!reopened.ok()) return triggered;
    const std::vector<std::string> sig = Signature(*reopened);
    if (sig == sig_before[i]) {
      ++pre;
    } else if (sig == sig_after[i]) {
      ++post;
    } else {
      ADD_FAILURE() << "slot " << i << " reopened as neither pre- nor "
                    << "post-batch\n" << report.ToString();
    }
  }
  EXPECT_TRUE(pre == after.size() || post == after.size())
      << "torn group commit: " << pre << " slot(s) pre-batch, " << post
      << " post-batch";
  if (saved.ok()) {
    // A successful return means the journal committed; recovery must
    // then finish the whole batch, never roll it back.
    EXPECT_EQ(post, after.size());
  }
  return triggered;
}

struct BatchCorpus {
  std::vector<VersionRepository> before, after;
  std::vector<std::vector<std::string>> sig_before, sig_after;
};

BatchCorpus MakeBatchCorpus(size_t slots) {
  BatchCorpus corpus;
  for (size_t i = 0; i < slots; ++i) {
    const uint64_t seed = 300 + i;
    corpus.before.push_back(MakeRepo(seed, 1));
    VersionRepository after = MakeRepo(seed, 1);
    Rng rng(400 + i);
    Result<SimulatedChange> change =
        SimulateChanges(after.current(), ChangeSimOptions{}, &rng);
    EXPECT_TRUE(change.ok());
    EXPECT_TRUE(after.Commit(std::move(change->new_version)).ok());
    corpus.after.push_back(std::move(after));
    corpus.sig_before.push_back(Signature(corpus.before.back()));
    corpus.sig_after.push_back(Signature(corpus.after.back()));
    EXPECT_NE(corpus.sig_before.back(), corpus.sig_after.back());
  }
  return corpus;
}

TEST_F(FaultInjectionTest, BatchCrashAtEveryOperationYieldsAllPreOrAllPost) {
  const BatchCorpus corpus = MakeBatchCorpus(3);
  int op = 0;
  for (; op < 10000; ++op) {
    if (!ProbeBatchFaultPoint(
            Dir(), corpus.before, corpus.after, corpus.sig_before,
            corpus.sig_after,
            [op](FaultInjectionEnv& env) { env.CrashAt(op); })) {
      break;
    }
  }
  // The batched protocol spans three slots plus a journal: the sweep
  // must cover far more ops than a single-slot save before walking off
  // the end.
  EXPECT_GT(op, 10);
  EXPECT_LT(op, 10000);
}

TEST_F(FaultInjectionTest, BatchTornWriteAtEveryOffsetYieldsAllPreOrAllPost) {
  const BatchCorpus corpus = MakeBatchCorpus(3);
  // Tear offsets chosen to land inside every interesting payload: the
  // empty prefix, a single byte, mid-manifest, and mid-journal (the
  // journal embeds all three manifests, so 512 bytes usually splits
  // slot entries). Non-write ops degrade to a plain crash, keeping the
  // sweep exhaustive over op indices.
  for (const size_t keep : {size_t{0}, size_t{1}, size_t{512}}) {
    int op = 0;
    for (; op < 10000; ++op) {
      if (!ProbeBatchFaultPoint(
              Dir(), corpus.before, corpus.after, corpus.sig_before,
              corpus.sig_after, [op, keep](FaultInjectionEnv& env) {
                env.TearWriteAt(op, keep);
              })) {
        break;
      }
    }
    EXPECT_GT(op, 10) << "keep=" << keep;
    EXPECT_LT(op, 10000) << "keep=" << keep;
  }
}

TEST_F(FaultInjectionTest, BatchCancelAtEveryOperationYieldsAllPreOrAllPost) {
  // Cancellation sweep: fire Cancel() at the Nth env op of the batched
  // save and require the reopened store to be ALL pre or ALL post —
  // the group-commit journal is the single commit point, so a cancel
  // noticed before it aborts cleanly and one noticed after it (there
  // are no checks after) lets the batch roll forward. Zero hybrids.
  const BatchCorpus corpus = MakeBatchCorpus(3);
  int op = 0;
  int cancelled_runs = 0;
  for (; op < 10000; ++op) {
    CancellationSource source;
    const Context ctx = source.MakeContext();
    bool triggered = false;
    {
      // Count runs the save actually abandoned (vs cancels that fired
      // past its last check-point and rolled forward).
      fs::remove_all(Dir());
      triggered = ProbeBatchFaultPoint(
          Dir(), corpus.before, corpus.after, corpus.sig_before,
          corpus.sig_after,
          [op, &source](FaultInjectionEnv& env) {
            env.CancelAt(op, source);
          },
          &ctx);
    }
    if (source.cancelled()) ++cancelled_runs;
    if (!triggered) break;
  }
  EXPECT_GT(op, 10);
  EXPECT_LT(op, 10000);
  EXPECT_GT(cancelled_runs, 10);
}

TEST_F(FaultInjectionTest, BatchDeadlineMidSaveYieldsAllPreOrAllPost) {
  // Deadline sweep: a DelayAt-injected stall at the Nth op makes a
  // 25 ms deadline expire mid-save, deterministically at that op. The
  // save must notice at its next check-point and leave disk all-pre;
  // a stall landing after the journal write rolls forward to all-post.
  const BatchCorpus corpus = MakeBatchCorpus(2);
  int op = 0;
  for (; op < 10000; ++op) {
    const Context ctx =
        Context::WithTimeout(std::chrono::milliseconds(25));
    if (!ProbeBatchFaultPoint(
            Dir(), corpus.before, corpus.after, corpus.sig_before,
            corpus.sig_after,
            [op](FaultInjectionEnv& env) { env.DelayAt(op, 60); }, &ctx)) {
      break;
    }
  }
  EXPECT_GT(op, 5);
  EXPECT_LT(op, 10000);
}

TEST_F(FaultInjectionTest, DeadlineCrossTornWriteLeavesNoHybrid) {
  // The combination sweep the overload ISSUE calls for: a deadline
  // blown at op N (via an injected stall) AND a torn write at a later
  // op. Whichever fires first must still leave every slot bit-exactly
  // pre- or post-batch. The torn write only triggers when the save
  // survives past the stall — both orders are covered by the sweep.
  const BatchCorpus corpus = MakeBatchCorpus(2);
  for (const int delay_op : {0, 2, 4, 6, 8}) {
    for (const size_t keep : {size_t{0}, size_t{512}}) {
      const Context ctx =
          Context::WithTimeout(std::chrono::milliseconds(25));
      ProbeBatchFaultPoint(
          Dir(), corpus.before, corpus.after, corpus.sig_before,
          corpus.sig_after,
          [delay_op, keep](FaultInjectionEnv& env) {
            env.DelayAt(delay_op, 60);
            env.TearWriteAt(delay_op + 3, keep);
          },
          &ctx);
    }
  }
}

TEST_F(FaultInjectionTest, DelayAtStallsTheTargetedOperations) {
  FaultInjectionEnv env;
  XY_ASSERT_OK(env.CreateDirs(Dir()));
  env.Reset();
  env.DelayAt(0, 30, 2);
  const auto start = std::chrono::steady_clock::now();
  XY_ASSERT_OK(env.WriteFile(Dir() + "/a", "x"));
  XY_ASSERT_OK(env.WriteFile(Dir() + "/b", "y"));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // Two stalled ops at 30 ms each; the op itself still succeeds.
  EXPECT_GE(elapsed.count(), 60);
  EXPECT_TRUE(env.triggered());
  // Ops past the window run at full speed and the files are intact.
  Result<std::string> a = env.ReadFile(Dir() + "/a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, "x");
}

TEST_F(FaultInjectionTest, CancelAtFiresTheSourceAndLetsTheOpProceed) {
  FaultInjectionEnv env;
  XY_ASSERT_OK(env.CreateDirs(Dir()));
  env.Reset();
  CancellationSource source;
  env.CancelAt(1, source);
  XY_ASSERT_OK(env.WriteFile(Dir() + "/a", "x"));  // Op 0: no cancel yet.
  EXPECT_FALSE(source.cancelled());
  XY_ASSERT_OK(env.WriteFile(Dir() + "/b", "y"));  // Op 1 fires the cancel.
  EXPECT_TRUE(source.cancelled());
  EXPECT_TRUE(env.triggered());
  // The op that fired the cancel still completed — the *caller* is the
  // one that must notice at its next check-point.
  Result<std::string> b = env.ReadFile(Dir() + "/b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, "y");
}

TEST_F(FaultInjectionTest, WriteFileShortFailureIsIOErrorNotCorruption) {
  // Satellite regression: a failed in-place write is an I/O failure
  // (possibly transient — ENOSPC), never "Corruption", which is
  // reserved for bytes read back wrong. /proc/self/mem rejects writes
  // at offset 0, giving a real short-write errno path.
  Env* env = Env::Default();
  const Status s = env->WriteFile("/proc/self/mem", "x");
  if (!s.ok()) {  // Sandboxes differ; only the classification matters.
    EXPECT_NE(s.code(), StatusCode::kCorruption) << s.ToString();
    EXPECT_NE(s.message().find("errno"), std::string::npos) << s.ToString();
  }
}

}  // namespace
}  // namespace xydiff
