#include "core/buld.h"
#include "delta/apply.h"
#include "delta/delta_xml.h"
#include "delta/invert.h"
#include "delta/validate.h"
#include "gtest/gtest.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace xydiff {
namespace {

Result<Delta> DiffCompressed(XmlDocument* a, XmlDocument* b) {
  DiffOptions options;
  options.compress_updates = true;
  return XyDiff(a, b, options);
}

TEST(UpdateCompressionTest, StoresOnlyTheDifferingMiddle) {
  XmlDocument a = MustParse(
      "<r><t>a very long description where only one word changes in the"
      " middle of the text</t></r>");
  a.AssignInitialXids();
  XmlDocument b = MustParse(
      "<r><t>a very long description where only two word changes in the"
      " middle of the text</t></r>");
  Result<Delta> delta = DiffCompressed(&a, &b);
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->updates().size(), 1u);
  const UpdateOp& op = delta->updates()[0];
  EXPECT_TRUE(op.is_compressed());
  EXPECT_GT(op.prefix, 20u);
  EXPECT_GT(op.suffix, 20u);
  EXPECT_LT(op.old_value.size(), 8u);
  EXPECT_LT(op.new_value.size(), 8u);
  XY_EXPECT_OK(ValidateDelta(*delta));

  XmlDocument patched = MustParse(
      "<r><t>a very long description where only one word changes in the"
      " middle of the text</t></r>");
  patched.AssignInitialXids();
  XY_ASSERT_OK(ApplyDelta(*delta, &patched));
  EXPECT_TRUE(DocsEqualWithXids(patched, b));
}

TEST(UpdateCompressionTest, InversionRestoresOldText) {
  XmlDocument a = MustParse("<r><t>shared head CHANGED shared tail</t></r>");
  a.AssignInitialXids();
  XmlDocument b = MustParse("<r><t>shared head REPLACED shared tail</t></r>");
  XmlDocument a2 = a.Clone();
  Result<Delta> delta = DiffCompressed(&a2, &b);
  ASSERT_TRUE(delta.ok());

  XmlDocument doc = a.Clone();
  XY_ASSERT_OK(ApplyDelta(*delta, &doc));
  XY_ASSERT_OK(ApplyDelta(InvertDelta(*delta), &doc));
  EXPECT_TRUE(DocsEqualWithXids(doc, a));
}

TEST(UpdateCompressionTest, XmlRoundTripKeepsPrefixSuffix) {
  XmlDocument a = MustParse("<r><t>prefix OLD suffix</t></r>");
  a.AssignInitialXids();
  XmlDocument b = MustParse("<r><t>prefix NEW suffix</t></r>");
  XmlDocument a2 = a.Clone();
  Result<Delta> delta = DiffCompressed(&a2, &b);
  ASSERT_TRUE(delta.ok());
  const std::string xml = SerializeDelta(*delta);
  EXPECT_NE(xml.find("prefix=\"7\""), std::string::npos) << xml;

  Result<Delta> reparsed = ParseDelta(xml);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->updates().size(), 1u);
  EXPECT_EQ(reparsed->updates()[0], delta->updates()[0]);

  XmlDocument patched = a.Clone();
  XY_ASSERT_OK(ApplyDelta(*reparsed, &patched));
  EXPECT_TRUE(DocsEqualWithXids(patched, b));
}

TEST(UpdateCompressionTest, WholeTextChangeHasNoSavings) {
  XmlDocument a = MustParse("<r><t>abc</t></r>");
  a.AssignInitialXids();
  XmlDocument b = MustParse("<r><t>xyz</t></r>");
  Result<Delta> delta = DiffCompressed(&a, &b);
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->updates().size(), 1u);
  EXPECT_FALSE(delta->updates()[0].is_compressed());
  EXPECT_EQ(delta->updates()[0].old_value, "abc");
}

TEST(UpdateCompressionTest, InsertionInMiddle) {
  // Overlapping prefix/suffix regions must not double-count bytes.
  XmlDocument a = MustParse("<r><t>aaaa</t></r>");
  a.AssignInitialXids();
  XmlDocument b = MustParse("<r><t>aaaaaa</t></r>");  // Two 'a's inserted.
  XmlDocument a2 = a.Clone();
  Result<Delta> delta = DiffCompressed(&a2, &b);
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->updates().size(), 1u);
  const UpdateOp& op = delta->updates()[0];
  EXPECT_EQ(static_cast<size_t>(op.prefix) + op.suffix + op.old_value.size(),
            4u);
  EXPECT_EQ(static_cast<size_t>(op.prefix) + op.suffix + op.new_value.size(),
            6u);
  XmlDocument patched = a.Clone();
  XY_ASSERT_OK(ApplyDelta(*delta, &patched));
  EXPECT_TRUE(DocsEqualWithXids(patched, b));
}

TEST(UpdateCompressionTest, Utf8BoundariesRespected) {
  // "€1" -> "€2": the shared prefix is the 3-byte euro sign; the trim
  // must not split it.
  XmlDocument a = MustParse("<r><t>\xE2\x82\xAC""1</t></r>");
  a.AssignInitialXids();
  XmlDocument b = MustParse("<r><t>\xE2\x82\xAC""2</t></r>");
  XmlDocument a2 = a.Clone();
  Result<Delta> delta = DiffCompressed(&a2, &b);
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->updates().size(), 1u);
  const UpdateOp& op = delta->updates()[0];
  EXPECT_EQ(op.prefix, 3u);
  // Reparse of the serialized delta must succeed (valid UTF-8 stayed
  // intact).
  Result<Delta> reparsed = ParseDelta(SerializeDelta(*delta));
  ASSERT_TRUE(reparsed.ok());
  XmlDocument patched = a.Clone();
  XY_ASSERT_OK(ApplyDelta(*reparsed, &patched));
  EXPECT_TRUE(DocsEqualWithXids(patched, b));
}

TEST(UpdateCompressionTest, ConflictDetectedOnWrongDocument) {
  XmlDocument a = MustParse("<r><t>prefix OLD suffix</t></r>");
  a.AssignInitialXids();
  XmlDocument b = MustParse("<r><t>prefix NEW suffix</t></r>");
  XmlDocument a2 = a.Clone();
  Result<Delta> delta = DiffCompressed(&a2, &b);
  ASSERT_TRUE(delta.ok());

  XmlDocument wrong = MustParse("<r><t>prefix BAD suffix</t></r>");
  wrong.AssignInitialXids();
  EXPECT_EQ(ApplyDelta(*delta, &wrong).code(), StatusCode::kConflict);
}

TEST(UpdateCompressionTest, RandomizedRoundTrips) {
  Rng rng(9001);
  for (int round = 0; round < 40; ++round) {
    // Random texts with a shared flank structure.
    const std::string head = rng.NextWord(0 + 1, 12);
    const std::string tail = rng.NextWord(1, 12);
    const std::string mid_a = rng.NextBool(0.2) ? "" : rng.NextWord(1, 8);
    std::string mid_b = rng.NextBool(0.2) ? "" : rng.NextWord(1, 8);
    if (mid_a == mid_b) mid_b += "x";
    XmlDocument a =
        MustParse("<r><t>" + head + mid_a + tail + "</t></r>");
    a.AssignInitialXids();
    XmlDocument b =
        MustParse("<r><t>" + head + mid_b + tail + "</t></r>");
    XmlDocument a2 = a.Clone();
    Result<Delta> delta = DiffCompressed(&a2, &b);
    ASSERT_TRUE(delta.ok());
    Result<Delta> reparsed = ParseDelta(SerializeDelta(*delta));
    ASSERT_TRUE(reparsed.ok());
    XmlDocument patched = a.Clone();
    XY_ASSERT_OK(ApplyDelta(*reparsed, &patched));
    EXPECT_TRUE(DocsEqualWithXids(patched, b)) << "round " << round;
    XY_ASSERT_OK(ApplyDelta(InvertDelta(*reparsed), &patched));
    EXPECT_TRUE(DocsEqualWithXids(patched, a)) << "round " << round;
  }
}

}  // namespace
}  // namespace xydiff
