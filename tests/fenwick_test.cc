#include "util/fenwick.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"

namespace xydiff {
namespace {

TEST(FenwickMaxTest, EmptyPrefixReturnsIdentity) {
  FenwickMax<int> tree(10, -1);
  EXPECT_EQ(tree.MaxPrefix(0), -1);
  EXPECT_EQ(tree.MaxPrefix(10), -1);
}

TEST(FenwickMaxTest, SingleUpdate) {
  FenwickMax<int> tree(8, 0);
  tree.Update(3, 5);
  EXPECT_EQ(tree.MaxPrefix(3), 0);   // Exclusive of index 3.
  EXPECT_EQ(tree.MaxPrefix(4), 5);
  EXPECT_EQ(tree.MaxPrefix(8), 5);
}

TEST(FenwickMaxTest, UpdateOnlyRaises) {
  FenwickMax<int> tree(4, 0);
  tree.Update(1, 9);
  tree.Update(1, 2);  // Lower value must not overwrite.
  EXPECT_EQ(tree.MaxPrefix(2), 9);
}

TEST(FenwickMaxTest, MatchesBruteForceOnRandomOps) {
  Rng rng(42);
  constexpr size_t kSize = 64;
  FenwickMax<int64_t> tree(kSize, INT64_MIN);
  std::vector<int64_t> reference(kSize, INT64_MIN);
  for (int step = 0; step < 2000; ++step) {
    if (rng.NextBool(0.5)) {
      const size_t index = rng.NextIndex(kSize);
      const int64_t value = rng.NextInRange(-1000, 1000);
      tree.Update(index, value);
      reference[index] = std::max(reference[index], value);
    } else {
      const size_t count = rng.NextIndex(kSize + 1);
      int64_t expected = INT64_MIN;
      for (size_t i = 0; i < count; ++i) {
        expected = std::max(expected, reference[i]);
      }
      ASSERT_EQ(tree.MaxPrefix(count), expected) << "at step " << step;
    }
  }
}

TEST(FenwickMaxTest, WorksWithPairs) {
  using Entry = std::pair<double, int>;
  FenwickMax<Entry> tree(5, Entry{-1.0, -1});
  tree.Update(0, Entry{2.5, 7});
  tree.Update(2, Entry{3.5, 9});
  EXPECT_EQ(tree.MaxPrefix(1), (Entry{2.5, 7}));
  EXPECT_EQ(tree.MaxPrefix(3), (Entry{3.5, 9}));
}

}  // namespace
}  // namespace xydiff
