#include "baseline/list_diff.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xydiff {
namespace {

TEST(ListDiffTest, IdenticalDocuments) {
  XmlDocument a = MustParse("<r><x>1</x><y/></r>");
  XmlDocument b = MustParse("<r><x>1</x><y/></r>");
  const ListDiffResult r = ListDiff(a, b);
  EXPECT_EQ(r.deleted_tokens, 0u);
  EXPECT_EQ(r.inserted_tokens, 0u);
  EXPECT_EQ(r.output_bytes, 0u);
  // <r>,<x>,text,</x>,<y>,</y>,</r> = 7 tokens.
  EXPECT_EQ(r.total_tokens_old, 7u);
}

TEST(ListDiffTest, TextChangeIsOneTokenSwap) {
  XmlDocument a = MustParse("<r><x>old</x></r>");
  XmlDocument b = MustParse("<r><x>new</x></r>");
  const ListDiffResult r = ListDiff(a, b);
  EXPECT_EQ(r.deleted_tokens, 1u);
  EXPECT_EQ(r.inserted_tokens, 1u);
}

TEST(ListDiffTest, AttributeChangeAffectsOpenToken) {
  XmlDocument a = MustParse("<r><x k=\"1\"/></r>");
  XmlDocument b = MustParse("<r><x k=\"2\"/></r>");
  const ListDiffResult r = ListDiff(a, b);
  EXPECT_EQ(r.deleted_tokens, 1u);
  EXPECT_EQ(r.inserted_tokens, 1u);
}

TEST(ListDiffTest, MovedSubtreeCostsItsWholeTokenRange) {
  // The DiffMK weakness the paper calls out: a move is paid twice.
  XmlDocument a = MustParse(
      "<r><big><a>1</a><b>2</b><c>3</c></big><x>4</x><y>5</y></r>");
  XmlDocument b = MustParse(
      "<r><x>4</x><y>5</y><big><a>1</a><b>2</b><c>3</c></big></r>");
  const ListDiffResult r = ListDiff(a, b);
  // The big subtree is 11 tokens; a tree diff with moves reports 1 move,
  // but the flattened diff pays the whole token range on one side.
  EXPECT_GE(r.deleted_tokens + r.inserted_tokens, 8u);
}

TEST(ListDiffTest, OutputBytesScaleWithChange) {
  XmlDocument a = MustParse("<r><x>aaaa</x><y>bbbb</y></r>");
  XmlDocument small_change = MustParse("<r><x>aaaa</x><y>cccc</y></r>");
  XmlDocument big_change = MustParse("<q><m>xxxx</m><n>yyyy</n></q>");
  EXPECT_LT(ListDiff(a, small_change).output_bytes,
            ListDiff(a, big_change).output_bytes);
}

TEST(ListDiffTest, EmptyDocuments) {
  XmlDocument a;
  XmlDocument b = MustParse("<r/>");
  const ListDiffResult r = ListDiff(a, b);
  EXPECT_EQ(r.total_tokens_old, 0u);
  EXPECT_EQ(r.inserted_tokens, 2u);
}

}  // namespace
}  // namespace xydiff
