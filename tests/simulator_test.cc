#include "simulator/change_simulator.h"

#include "delta/apply.h"
#include "gtest/gtest.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "xml/serializer.h"

namespace xydiff {
namespace {

TEST(DocGeneratorTest, HitsTargetSizeApproximately) {
  Rng rng(1);
  for (size_t target : {2048u, 16384u, 131072u}) {
    DocGenOptions options;
    options.target_bytes = target;
    XmlDocument doc = GenerateDocument(&rng, options);
    const size_t actual = SerializeDocument(doc).size();
    EXPECT_GT(actual, target / 2) << "target " << target;
    EXPECT_LT(actual, target * 3) << "target " << target;
  }
}

TEST(DocGeneratorTest, DeterministicFromSeed) {
  Rng rng1(42);
  Rng rng2(42);
  XmlDocument a = GenerateDocument(&rng1);
  XmlDocument b = GenerateDocument(&rng2);
  EXPECT_TRUE(DocsEqual(a, b));
}

TEST(DocGeneratorTest, DifferentSeedsDiffer) {
  Rng rng1(1);
  Rng rng2(2);
  XmlDocument a = GenerateDocument(&rng1);
  XmlDocument b = GenerateDocument(&rng2);
  EXPECT_FALSE(a.root()->DeepEquals(*b.root()));
}

TEST(DocGeneratorTest, GeneratedDocumentsReparse) {
  Rng rng(3);
  XmlDocument doc = GenerateDocument(&rng);
  XmlDocument reparsed = MustParse(SerializeDocument(doc));
  EXPECT_TRUE(DocsEqual(doc, reparsed));
}

TEST(DocGeneratorTest, IdAttributesWhenRequested) {
  Rng rng(4);
  DocGenOptions options;
  options.with_id_attributes = true;
  XmlDocument doc = GenerateDocument(&rng, options);
  ASSERT_NE(doc.dtd().IdAttributeFor("item"), nullptr);
  size_t with_id = 0;
  doc.root()->Visit([&](const XmlNode* n) {
    if (n->is_element() && n->label() == "item" &&
        n->FindAttribute("id") != nullptr) {
      ++with_id;
    }
  });
  EXPECT_GT(with_id, 0u);
}

TEST(DocGeneratorTest, NoAdjacentTextNodes) {
  Rng rng(5);
  XmlDocument doc = GenerateDocument(&rng);
  doc.root()->Visit([&](const XmlNode* n) {
    for (size_t i = 1; i < n->child_count(); ++i) {
      EXPECT_FALSE(n->child(i - 1)->is_text() && n->child(i)->is_text());
    }
  });
}

TEST(ChangeSimulatorTest, PerfectDeltaIsValid) {
  Rng rng(10);
  XmlDocument base = GenerateDocument(&rng);
  base.AssignInitialXids();
  Result<SimulatedChange> change =
      SimulateChanges(base, ChangeSimOptions{}, &rng);
  ASSERT_TRUE(change.ok()) << change.status().ToString();
  XmlDocument patched = base.Clone();
  XY_ASSERT_OK(ApplyDelta(change->perfect_delta, &patched));
  EXPECT_TRUE(DocsEqualWithXids(patched, change->new_version));
}

TEST(ChangeSimulatorTest, ZeroProbabilitiesChangeNothing) {
  Rng rng(11);
  XmlDocument base = GenerateDocument(&rng);
  base.AssignInitialXids();
  ChangeSimOptions options;
  options.delete_probability = 0;
  options.update_probability = 0;
  options.insert_probability = 0;
  options.move_probability = 0;
  Result<SimulatedChange> change = SimulateChanges(base, options, &rng);
  ASSERT_TRUE(change.ok());
  EXPECT_TRUE(change->perfect_delta.empty());
  EXPECT_TRUE(DocsEqualWithXids(base, change->new_version));
}

TEST(ChangeSimulatorTest, CountersReflectOptions) {
  Rng rng(12);
  DocGenOptions gen;
  gen.target_bytes = 32768;
  XmlDocument base = GenerateDocument(&rng, gen);
  base.AssignInitialXids();

  ChangeSimOptions only_updates;
  only_updates.delete_probability = 0;
  only_updates.insert_probability = 0;
  only_updates.move_probability = 0;
  only_updates.update_probability = 0.5;
  Result<SimulatedChange> change = SimulateChanges(base, only_updates, &rng);
  ASSERT_TRUE(change.ok());
  EXPECT_EQ(change->deleted_subtrees, 0u);
  EXPECT_EQ(change->inserted_nodes, 0u);
  EXPECT_EQ(change->moved_subtrees, 0u);
  EXPECT_GT(change->updated_texts, 0u);
  EXPECT_EQ(change->perfect_delta.updates().size(), change->updated_texts);
}

TEST(ChangeSimulatorTest, MovesPreserveXids) {
  Rng rng(13);
  DocGenOptions gen;
  gen.target_bytes = 16384;
  XmlDocument base = GenerateDocument(&rng, gen);
  base.AssignInitialXids();
  const Xid max_base_xid = base.next_xid() - 1;

  ChangeSimOptions movy;
  movy.delete_probability = 0.2;
  movy.update_probability = 0;
  movy.insert_probability = 0;
  movy.move_probability = 0.4;
  Result<SimulatedChange> change = SimulateChanges(base, movy, &rng);
  ASSERT_TRUE(change.ok());
  ASSERT_GT(change->moved_subtrees, 0u);
  // Every move op in the perfect delta references a pre-existing XID.
  for (const MoveOp& move : change->perfect_delta.moves()) {
    EXPECT_LE(move.xid, max_base_xid);
  }
}

TEST(ChangeSimulatorTest, InsertedNodesGetFreshXids) {
  Rng rng(14);
  XmlDocument base = GenerateDocument(&rng);
  base.AssignInitialXids();
  const Xid boundary = base.next_xid();

  ChangeSimOptions inserty;
  inserty.delete_probability = 0;
  inserty.update_probability = 0;
  inserty.insert_probability = 0.3;
  inserty.move_probability = 0;
  Result<SimulatedChange> change = SimulateChanges(base, inserty, &rng);
  ASSERT_TRUE(change.ok());
  ASSERT_GT(change->inserted_nodes, 0u);
  for (const InsertOp& op : change->perfect_delta.inserts()) {
    op.subtree->Visit([&](const XmlNode* n) {
      EXPECT_GE(n->xid(), boundary);
    });
  }
}

TEST(ChangeSimulatorTest, RequiresXids) {
  Rng rng(15);
  XmlDocument base = GenerateDocument(&rng);  // No XIDs.
  Result<SimulatedChange> change =
      SimulateChanges(base, ChangeSimOptions{}, &rng);
  EXPECT_EQ(change.status().code(), StatusCode::kInvalidArgument);
}

TEST(ChangeSimulatorTest, NoAdjacentTextAfterSimulation) {
  Rng rng(16);
  XmlDocument base = GenerateDocument(&rng);
  base.AssignInitialXids();
  ChangeSimOptions heavy;
  heavy.delete_probability = 0.2;
  heavy.update_probability = 0.2;
  heavy.insert_probability = 0.3;
  heavy.move_probability = 0.3;
  Result<SimulatedChange> change = SimulateChanges(base, heavy, &rng);
  ASSERT_TRUE(change.ok());
  change->new_version.root()->Visit([&](const XmlNode* n) {
    for (size_t i = 1; i < n->child_count(); ++i) {
      EXPECT_FALSE(n->child(i - 1)->is_text() && n->child(i)->is_text())
          << "adjacent text nodes would merge on reparse";
    }
  });
}

}  // namespace
}  // namespace xydiff
