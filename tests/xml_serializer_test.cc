#include "xml/serializer.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "simulator/doc_generator.h"
#include "util/random.h"
#include "xml/parser.h"

namespace xydiff {
namespace {

TEST(SerializerTest, SelfClosingEmptyElement) {
  XmlDocument doc = MustParse("<a></a>");
  EXPECT_EQ(SerializeDocument(doc), "<a/>");
}

TEST(SerializerTest, NestedStructure) {
  XmlDocument doc = MustParse("<a><b>t</b><c/></a>");
  EXPECT_EQ(SerializeDocument(doc), "<a><b>t</b><c/></a>");
}

TEST(SerializerTest, AttributesPreserved) {
  XmlDocument doc = MustParse(R"(<a x="1" y="two"/>)");
  EXPECT_EQ(SerializeDocument(doc), R"(<a x="1" y="two"/>)");
}

TEST(SerializerTest, TextEscaping) {
  EXPECT_EQ(EscapeText("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(EscapeText("plain"), "plain");
  EXPECT_EQ(EscapeAttribute("a\"b<c&"), "a&quot;b&lt;c&amp;");
}

TEST(SerializerTest, EscapedRoundTrip) {
  auto root = XmlNode::Element("t");
  root->SetAttribute("attr", "q\"uote & <tag>");
  root->AppendChild(XmlNode::Text("body & <stuff>"));
  XmlDocument doc(std::move(root));
  const std::string xml = SerializeDocument(doc);
  XmlDocument reparsed = MustParse(xml);
  EXPECT_TRUE(DocsEqual(doc, reparsed));
}

TEST(SerializerTest, XmlDeclaration) {
  XmlDocument doc = MustParse("<a/>");
  SerializeOptions options;
  options.xml_declaration = true;
  const std::string out = SerializeDocument(doc, options);
  EXPECT_TRUE(out.starts_with("<?xml version=\"1.0\""));
}

TEST(SerializerTest, PrettyPrinting) {
  XmlDocument doc = MustParse("<a><b>t</b></a>");
  SerializeOptions options;
  options.pretty = true;
  const std::string out = SerializeDocument(doc, options);
  EXPECT_NE(out.find("<a>\n"), std::string::npos);
  EXPECT_NE(out.find("  <b>"), std::string::npos);
  // Pretty output re-parses to the same tree under default options.
  EXPECT_TRUE(DocsEqual(doc, MustParse(out)));
}

TEST(SerializerTest, EmitXids) {
  XmlDocument doc = MustParse("<a><b/></a>");
  doc.AssignInitialXids();
  SerializeOptions options;
  options.emit_xids = true;
  const std::string out = SerializeDocument(doc, options);
  EXPECT_NE(out.find("xy:xid=\"2\""), std::string::npos);
  EXPECT_NE(out.find("xy:xid=\"1\""), std::string::npos);
}

TEST(SerializerTest, DoctypeEmissionRoundTripsIdAttributes) {
  XmlDocument doc = MustParse(
      "<!DOCTYPE c [<!ATTLIST p id ID #IMPLIED>]><c><p id=\"1\"/></c>");
  SerializeOptions options;
  options.doctype = true;
  const std::string out = SerializeDocument(doc, options);
  XmlDocument reparsed = MustParse(out);
  ASSERT_NE(reparsed.dtd().IdAttributeFor("p"), nullptr);
  EXPECT_EQ(*reparsed.dtd().IdAttributeFor("p"), "id");
}

TEST(SerializerTest, SerializeNodeSubtree) {
  XmlDocument doc = MustParse("<a><b>x</b></a>");
  EXPECT_EQ(SerializeNode(*doc.root()->child(0)), "<b>x</b>");
}

TEST(SerializerTest, EmptyDocument) {
  XmlDocument doc;
  EXPECT_EQ(SerializeDocument(doc), "");
}

// Property: parse(serialize(doc)) == doc over random documents.
class SerializerRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializerRoundTrip, RandomDocuments) {
  Rng rng(GetParam());
  DocGenOptions options;
  options.target_bytes = 4096;
  XmlDocument doc = GenerateDocument(&rng, options);
  XmlDocument reparsed = MustParse(SerializeDocument(doc));
  EXPECT_TRUE(DocsEqual(doc, reparsed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializerRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace xydiff
