#include "util/random.h"

#include <map>
#include <set>

#include "gtest/gtest.h"

namespace xydiff {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(4);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(6);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, SplitIsIndependent) {
  Rng a(8);
  Rng split = a.Split();
  // The split stream differs from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == split.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextWordLengthBounds) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const std::string w = rng.NextWord(3, 7);
    EXPECT_GE(w.size(), 3u);
    EXPECT_LE(w.size(), 7u);
    for (char c : w) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

}  // namespace
}  // namespace xydiff
