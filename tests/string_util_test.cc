#include "util/string_util.h"

#include "gtest/gtest.h"

namespace xydiff {
namespace {

TEST(SplitTest, Basic) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitLinesTest, Basic) {
  const auto lines = SplitLines("one\ntwo\nthree");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2], "three");
}

TEST(SplitLinesTest, TrailingNewlineProducesNoEmptyLine) {
  const auto lines = SplitLines("one\ntwo\n");
  ASSERT_EQ(lines.size(), 2u);
}

TEST(SplitLinesTest, EmptyInput) {
  EXPECT_TRUE(SplitLines("").empty());
}

TEST(SplitLinesTest, InteriorEmptyLinesKept) {
  const auto lines = SplitLines("a\n\nb");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1], "");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "el"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("hello", "he"));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(TrimTest, Basic) {
  EXPECT_EQ(Trim("  a b \t\n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(ParseUint64Test, Valid) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_TRUE(ParseUint64("42", &v));
  EXPECT_EQ(v, 42u);
}

TEST(ParseUint64Test, Invalid) {
  uint64_t v = 0;
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("12x", &v));
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // Overflow.
  EXPECT_FALSE(ParseUint64(" 1", &v));
}

TEST(XmlWhitespaceTest, Classification) {
  EXPECT_TRUE(IsXmlWhitespace(' '));
  EXPECT_TRUE(IsXmlWhitespace('\t'));
  EXPECT_TRUE(IsXmlWhitespace('\n'));
  EXPECT_TRUE(IsXmlWhitespace('\r'));
  EXPECT_FALSE(IsXmlWhitespace('a'));
  EXPECT_TRUE(IsAllXmlWhitespace("  \t\n"));
  EXPECT_TRUE(IsAllXmlWhitespace(""));
  EXPECT_FALSE(IsAllXmlWhitespace(" x "));
}

}  // namespace
}  // namespace xydiff
