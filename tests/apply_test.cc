#include "delta/apply.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xydiff {
namespace {

/// Builds <r><a>x</a><b/></r> with postfix XIDs: x=1 a=2 b=3 r=4.
XmlDocument BaseDoc() {
  XmlDocument doc = MustParse("<r><a>x</a><b/></r>");
  doc.AssignInitialXids();
  return doc;
}

TEST(ApplyTest, UpdateChangesText) {
  XmlDocument doc = BaseDoc();
  Delta delta;
  delta.set_new_next_xid(5);
  delta.updates().push_back(UpdateOp{1, "x", "y"});
  XY_ASSERT_OK(ApplyDelta(delta, &doc));
  EXPECT_EQ(doc.root()->child(0)->child(0)->text(), "y");
}

TEST(ApplyTest, UpdateVerifiesOldValue) {
  XmlDocument doc = BaseDoc();
  Delta delta;
  delta.updates().push_back(UpdateOp{1, "WRONG", "y"});
  EXPECT_EQ(ApplyDelta(delta, &doc).code(), StatusCode::kConflict);
  // Without verification it goes through.
  XmlDocument doc2 = BaseDoc();
  ApplyOptions lax;
  lax.verify = false;
  XY_ASSERT_OK(ApplyDelta(delta, &doc2, lax));
  EXPECT_EQ(doc2.root()->child(0)->child(0)->text(), "y");
}

TEST(ApplyTest, UpdateTargetMustBeText) {
  XmlDocument doc = BaseDoc();
  Delta delta;
  delta.updates().push_back(UpdateOp{2, "x", "y"});  // <a> is an element.
  EXPECT_EQ(ApplyDelta(delta, &doc).code(), StatusCode::kConflict);
}

TEST(ApplyTest, UpdateUnknownXid) {
  XmlDocument doc = BaseDoc();
  Delta delta;
  delta.updates().push_back(UpdateOp{99, "x", "y"});
  EXPECT_EQ(ApplyDelta(delta, &doc).code(), StatusCode::kNotFound);
}

TEST(ApplyTest, InsertAtPosition) {
  XmlDocument doc = BaseDoc();
  Delta delta;
  auto subtree = XmlNode::Element("c");
  subtree->set_xid(5);
  delta.inserts().emplace_back(5, 4, 2, std::move(subtree));
  delta.set_new_next_xid(6);
  XY_ASSERT_OK(ApplyDelta(delta, &doc));
  ASSERT_EQ(doc.root()->child_count(), 3u);
  EXPECT_EQ(doc.root()->child(1)->label(), "c");
  EXPECT_EQ(doc.root()->child(1)->xid(), 5u);
  EXPECT_EQ(doc.next_xid(), 6u);
}

TEST(ApplyTest, DeleteRemovesSubtreeAndChecksSnapshot) {
  XmlDocument doc = BaseDoc();
  Delta delta;
  auto snapshot = XmlNode::Element("a");
  snapshot->set_xid(2);
  auto text = XmlNode::Text("x");
  text->set_xid(1);
  snapshot->AppendChild(std::move(text));
  delta.deletes().emplace_back(2, 4, 1, std::move(snapshot));
  XY_ASSERT_OK(ApplyDelta(delta, &doc));
  ASSERT_EQ(doc.root()->child_count(), 1u);
  EXPECT_EQ(doc.root()->child(0)->label(), "b");
}

TEST(ApplyTest, DeleteSnapshotMismatchFails) {
  XmlDocument doc = BaseDoc();
  Delta delta;
  auto snapshot = XmlNode::Element("a");
  snapshot->set_xid(2);
  auto text = XmlNode::Text("DIFFERENT");
  text->set_xid(1);
  snapshot->AppendChild(std::move(text));
  delta.deletes().emplace_back(2, 4, 1, std::move(snapshot));
  EXPECT_EQ(ApplyDelta(delta, &doc).code(), StatusCode::kConflict);
}

TEST(ApplyTest, DeleteXidMapMismatchFails) {
  XmlDocument doc = BaseDoc();
  Delta delta;
  auto snapshot = XmlNode::Element("a");
  snapshot->set_xid(2);
  auto text = XmlNode::Text("x");
  text->set_xid(77);  // Structure equal, XIDs differ.
  snapshot->AppendChild(std::move(text));
  delta.deletes().emplace_back(2, 4, 1, std::move(snapshot));
  EXPECT_EQ(ApplyDelta(delta, &doc).code(), StatusCode::kConflict);
}

TEST(ApplyTest, MoveBetweenParents) {
  // Move <a> (xid 2) under <b> (xid 3).
  XmlDocument doc = BaseDoc();
  Delta delta;
  delta.moves().push_back(MoveOp{2, 4, 1, 3, 1});
  XY_ASSERT_OK(ApplyDelta(delta, &doc));
  ASSERT_EQ(doc.root()->child_count(), 1u);
  EXPECT_EQ(doc.root()->child(0)->label(), "b");
  ASSERT_EQ(doc.root()->child(0)->child_count(), 1u);
  EXPECT_EQ(doc.root()->child(0)->child(0)->label(), "a");
  EXPECT_EQ(doc.root()->child(0)->child(0)->xid(), 2u);
}

TEST(ApplyTest, MoveWithinParentReorders) {
  XmlDocument doc = BaseDoc();
  Delta delta;
  delta.moves().push_back(MoveOp{2, 4, 1, 4, 2});  // a to position 2.
  XY_ASSERT_OK(ApplyDelta(delta, &doc));
  EXPECT_EQ(doc.root()->child(0)->label(), "b");
  EXPECT_EQ(doc.root()->child(1)->label(), "a");
}

TEST(ApplyTest, RootReplacement) {
  XmlDocument doc = BaseDoc();
  Delta delta;
  auto old_root = doc.root()->Clone();
  delta.deletes().emplace_back(4, kNoXid, 1, std::move(old_root));
  auto new_root = XmlNode::Element("fresh");
  new_root->set_xid(10);
  delta.inserts().emplace_back(10, kNoXid, 1, std::move(new_root));
  delta.set_new_next_xid(11);
  XY_ASSERT_OK(ApplyDelta(delta, &doc));
  EXPECT_EQ(doc.root()->label(), "fresh");
}

TEST(ApplyTest, DeltaRemovingRootWithoutReplacementFails) {
  XmlDocument doc = BaseDoc();
  Delta delta;
  delta.deletes().emplace_back(4, kNoXid, 1, doc.root()->Clone());
  EXPECT_EQ(ApplyDelta(delta, &doc).code(), StatusCode::kCorruption);
}

TEST(ApplyTest, MoveIntoInsertedSubtree) {
  XmlDocument doc = BaseDoc();
  Delta delta;
  auto wrapper = XmlNode::Element("wrap");
  wrapper->set_xid(9);
  // Final children of <r>: [b, wrap] — <a> moves away, so wrap's target
  // position is 2.
  delta.inserts().emplace_back(9, 4, 2, std::move(wrapper));
  delta.moves().push_back(MoveOp{2, 4, 1, 9, 1});
  delta.set_new_next_xid(10);
  XY_ASSERT_OK(ApplyDelta(delta, &doc));
  // r now has b, wrap; wrap contains a.
  ASSERT_EQ(doc.root()->child_count(), 2u);
  EXPECT_EQ(doc.root()->child(1)->label(), "wrap");
  ASSERT_EQ(doc.root()->child(1)->child_count(), 1u);
  EXPECT_EQ(doc.root()->child(1)->child(0)->label(), "a");
}

TEST(ApplyTest, DeleteInsideMovedSubtree) {
  // Move <a> under <b> while deleting a's text child.
  XmlDocument doc = BaseDoc();
  Delta delta;
  auto snapshot = XmlNode::Text("x");
  snapshot->set_xid(1);
  delta.deletes().emplace_back(1, 2, 1, std::move(snapshot));
  delta.moves().push_back(MoveOp{2, 4, 1, 3, 1});
  XY_ASSERT_OK(ApplyDelta(delta, &doc));
  const XmlNode* a = doc.root()->child(0)->child(0);
  EXPECT_EQ(a->label(), "a");
  EXPECT_EQ(a->child_count(), 0u);
}

TEST(ApplyTest, AttributeOps) {
  XmlDocument doc = BaseDoc();
  doc.root()->child(0)->SetAttribute("keep", "1");
  doc.root()->child(0)->SetAttribute("drop", "2");
  doc.root()->child(0)->SetAttribute("change", "3");
  Delta delta;
  delta.attribute_ops().push_back(
      {AttributeOpKind::kInsert, 2, "fresh", "", "9"});
  delta.attribute_ops().push_back(
      {AttributeOpKind::kDelete, 2, "drop", "2", ""});
  delta.attribute_ops().push_back(
      {AttributeOpKind::kUpdate, 2, "change", "3", "30"});
  XY_ASSERT_OK(ApplyDelta(delta, &doc));
  const XmlNode* a = doc.root()->child(0);
  EXPECT_EQ(*a->FindAttribute("fresh"), "9");
  EXPECT_EQ(a->FindAttribute("drop"), nullptr);
  EXPECT_EQ(*a->FindAttribute("change"), "30");
  EXPECT_EQ(*a->FindAttribute("keep"), "1");
}

TEST(ApplyTest, AttributeConflicts) {
  // Fresh document per case: a failed apply may leave partial changes.
  {
    XmlDocument doc = BaseDoc();
    doc.root()->child(0)->SetAttribute("k", "1");
    Delta delta;
    delta.attribute_ops().push_back(
        {AttributeOpKind::kInsert, 2, "k", "", "2"});  // Already present.
    EXPECT_EQ(ApplyDelta(delta, &doc).code(), StatusCode::kConflict);
    // The document was restored to a usable (rooted) state.
    ASSERT_NE(doc.root(), nullptr);
  }
  {
    XmlDocument doc = BaseDoc();
    doc.root()->child(0)->SetAttribute("k", "1");
    Delta delta;
    delta.attribute_ops().push_back(
        {AttributeOpKind::kDelete, 2, "k", "WRONG", ""});
    EXPECT_EQ(ApplyDelta(delta, &doc).code(), StatusCode::kConflict);
  }
  {
    XmlDocument doc = BaseDoc();
    Delta delta;
    delta.attribute_ops().push_back(
        {AttributeOpKind::kUpdate, 2, "absent", "1", "2"});
    EXPECT_EQ(ApplyDelta(delta, &doc).code(), StatusCode::kConflict);
  }
}

TEST(ApplyTest, InsertWithoutSnapshotFails) {
  XmlDocument doc = BaseDoc();
  Delta delta;
  delta.inserts().emplace_back(9, 4, 1, nullptr);
  EXPECT_EQ(ApplyDelta(delta, &doc).code(), StatusCode::kInvalidArgument);
}

TEST(ApplyTest, InsertDuplicateXidFails) {
  XmlDocument doc = BaseDoc();
  Delta delta;
  auto subtree = XmlNode::Element("dup");
  subtree->set_xid(2);  // Already taken by <a>.
  delta.inserts().emplace_back(2, 4, 3, std::move(subtree));
  EXPECT_EQ(ApplyDelta(delta, &doc).code(), StatusCode::kConflict);
}

TEST(ApplyTest, AttachPositionOutOfRangeFails) {
  XmlDocument doc = BaseDoc();
  Delta delta;
  auto subtree = XmlNode::Element("c");
  subtree->set_xid(9);
  delta.inserts().emplace_back(9, 4, 99, std::move(subtree));
  EXPECT_EQ(ApplyDelta(delta, &doc).code(), StatusCode::kConflict);
}

TEST(ApplyTest, MultipleInsertsAtSameParentAscendingPositions) {
  XmlDocument doc = BaseDoc();  // r(4) children: a(2), b(3).
  Delta delta;
  // Final children: [n1, a, n2, b, n3] -> positions 1, 3, 5.
  const auto make = [](const char* label, Xid xid) {
    auto node = XmlNode::Element(label);
    node->set_xid(xid);
    return node;
  };
  // Deliberately out of order in the op list (set semantics).
  delta.inserts().emplace_back(7, 4, 5, make("n3", 7));
  delta.inserts().emplace_back(5, 4, 1, make("n1", 5));
  delta.inserts().emplace_back(6, 4, 3, make("n2", 6));
  delta.set_new_next_xid(8);
  XY_ASSERT_OK(ApplyDelta(delta, &doc));
  ASSERT_EQ(doc.root()->child_count(), 5u);
  EXPECT_EQ(doc.root()->child(0)->label(), "n1");
  EXPECT_EQ(doc.root()->child(1)->label(), "a");
  EXPECT_EQ(doc.root()->child(2)->label(), "n2");
  EXPECT_EQ(doc.root()->child(3)->label(), "b");
  EXPECT_EQ(doc.root()->child(4)->label(), "n3");
}

TEST(ApplyTest, ChainedMoves) {
  // a moves under b; b moves under... b cannot move under a's subtree
  // (cycle), but b can move to position 1 while a moves inside it.
  XmlDocument doc = BaseDoc();
  Delta delta;
  delta.moves().push_back(MoveOp{2, 4, 1, 3, 1});  // a under b.
  delta.moves().push_back(MoveOp{3, 4, 2, 4, 1});  // b to front (is only child).
  XY_ASSERT_OK(ApplyDelta(delta, &doc));
  ASSERT_EQ(doc.root()->child_count(), 1u);
  EXPECT_EQ(doc.root()->child(0)->label(), "b");
  EXPECT_EQ(doc.root()->child(0)->child(0)->label(), "a");
}

TEST(ApplyTest, UpdateInsideMovedSubtree) {
  XmlDocument doc = BaseDoc();
  Delta delta;
  delta.updates().push_back(UpdateOp{1, "x", "renamed"});
  delta.moves().push_back(MoveOp{2, 4, 1, 3, 1});
  XY_ASSERT_OK(ApplyDelta(delta, &doc));
  EXPECT_EQ(doc.root()->child(0)->child(0)->child(0)->text(), "renamed");
}

TEST(ApplyTest, MoveDetachedTwiceFails) {
  XmlDocument doc = BaseDoc();
  Delta delta;
  delta.moves().push_back(MoveOp{2, 4, 1, 3, 1});
  delta.moves().push_back(MoveOp{2, 4, 1, 4, 2});
  EXPECT_EQ(ApplyDelta(delta, &doc).code(), StatusCode::kConflict);
}

TEST(ApplyTest, ClampPositionsOption) {
  XmlDocument doc = BaseDoc();
  Delta delta;
  auto subtree = XmlNode::Element("c");
  subtree->set_xid(9);
  delta.inserts().emplace_back(9, 4, 99, std::move(subtree));
  delta.set_new_next_xid(10);
  ApplyOptions clamping;
  clamping.clamp_positions = true;
  XY_ASSERT_OK(ApplyDelta(delta, &doc, clamping));
  EXPECT_EQ(doc.root()->child(2)->label(), "c");  // Clamped to the end.
}

TEST(ApplyTest, EmptyDeltaIsNoOp) {
  XmlDocument doc = BaseDoc();
  XmlDocument before = doc.Clone();
  Delta delta;
  delta.set_old_next_xid(doc.next_xid());
  delta.set_new_next_xid(doc.next_xid());
  XY_ASSERT_OK(ApplyDelta(delta, &doc));
  EXPECT_TRUE(DocsEqualWithXids(doc, before));
}

TEST(ApplyTest, EmptyDocumentRejected) {
  XmlDocument doc;
  Delta delta;
  EXPECT_EQ(ApplyDelta(delta, &doc).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace xydiff
