#include "baseline/ladiff.h"

#include "delta/apply.h"
#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace xydiff {
namespace {

TEST(LaDiffTest, IdenticalDocuments) {
  XmlDocument a = MustParse("<r><x>one</x><y>two</y></r>");
  a.AssignInitialXids();
  XmlDocument b = MustParse("<r><x>one</x><y>two</y></r>");
  LaDiffStats stats;
  Result<Delta> delta = LaDiff(&a, &b, DiffOptions{}, &stats);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
  EXPECT_EQ(stats.matched_leaves, 2u);
  EXPECT_GE(stats.matched_internal, 3u);
}

TEST(LaDiffTest, ProducesCorrectDelta) {
  XmlDocument a = MustParse(
      "<shop><item>apple</item><item>pear</item><box><item>plum</item>"
      "</box></shop>");
  a.AssignInitialXids();
  XmlDocument b = MustParse(
      "<shop><item>apple</item><box><item>plum</item><item>cherry</item>"
      "</box></shop>");
  XmlDocument a_clone = a.Clone();
  Result<Delta> delta = LaDiff(&a_clone, &b);
  ASSERT_TRUE(delta.ok());
  XmlDocument patched = a.Clone();
  XY_ASSERT_OK(ApplyDelta(*delta, &patched));
  EXPECT_TRUE(DocsEqualWithXids(patched, b));
}

TEST(LaDiffTest, CorrectOnSimulatedChanges) {
  Rng rng(9);
  DocGenOptions gen;
  gen.target_bytes = 4096;
  for (int round = 0; round < 5; ++round) {
    XmlDocument base = GenerateDocument(&rng, gen);
    base.AssignInitialXids();
    Result<SimulatedChange> change =
        SimulateChanges(base, ChangeSimOptions{}, &rng);
    ASSERT_TRUE(change.ok());
    XmlDocument a = base.Clone();
    XmlDocument b = change->new_version.Clone();
    Result<Delta> delta = LaDiff(&a, &b);
    ASSERT_TRUE(delta.ok());
    XmlDocument patched = base.Clone();
    XY_ASSERT_OK(ApplyDelta(*delta, &patched));
    EXPECT_TRUE(DocsEqualWithXids(patched, b)) << "round " << round;
  }
}

TEST(LaDiffTest, ReportsQuadraticWork) {
  Rng rng(10);
  DocGenOptions small;
  small.target_bytes = 2048;
  DocGenOptions large;
  large.target_bytes = 8192;

  XmlDocument a1 = GenerateDocument(&rng, small);
  a1.AssignInitialXids();
  XmlDocument b1 = a1.Clone();
  LaDiffStats stats_small;
  ASSERT_TRUE(LaDiff(&a1, &b1, DiffOptions{}, &stats_small).ok());

  XmlDocument a2 = GenerateDocument(&rng, large);
  a2.AssignInitialXids();
  XmlDocument b2 = a2.Clone();
  LaDiffStats stats_large;
  ASSERT_TRUE(LaDiff(&a2, &b2, DiffOptions{}, &stats_large).ok());

  // 4x the document should cost ~16x the DP cells (quadratic), at least
  // substantially super-linear.
  EXPECT_GT(stats_large.lcs_cells, 6 * stats_small.lcs_cells);
}

TEST(LaDiffTest, EmptyDocumentsRejected) {
  XmlDocument a;
  XmlDocument b = MustParse("<r/>");
  EXPECT_FALSE(LaDiff(&a, &b).ok());
}

}  // namespace
}  // namespace xydiff
