#!/bin/sh
# End-to-end exercise of the xydiff_tool binary: diff, stats, validate,
# patch forward, patch in reverse via the XID sidecar, invert, compose.
# Usage: tool_integration_test.sh <path-to-xydiff_tool>
set -e

TOOL="$1"
[ -x "$TOOL" ] || { echo "tool not found: $TOOL"; exit 1; }

DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT
cd "$DIR"

cat > old.xml <<'EOF'
<catalog><item><name>alpha</name><price>10</price></item><item><name>beta</name><price>20</price></item><box/></catalog>
EOF
cat > new.xml <<'EOF'
<catalog><box><item><name>beta</name><price>25</price></item></box><item><name>gamma</name><price>30</price></item></catalog>
EOF

echo "-- diff"
"$TOOL" diff old.xml new.xml -o delta.xml --stats 2> diff_stats.txt
grep -q "nodes" diff_stats.txt

echo "-- stats + validate"
"$TOOL" stats delta.xml | grep -q "operations"
"$TOOL" validate delta.xml | grep -q "^ok:"

echo "-- patch forward"
"$TOOL" patch old.xml delta.xml -o patched.xml --write-meta patched.meta
# The patched document must re-diff against new.xml as empty.
"$TOOL" diff patched.xml new.xml -o empty_delta.xml
"$TOOL" stats empty_delta.xml | grep -q "operations     : 0"

echo "-- patch reverse (needs the XID sidecar)"
"$TOOL" patch patched.xml delta.xml --reverse --meta patched.meta -o back.xml
"$TOOL" diff back.xml old.xml -o empty2.xml
"$TOOL" stats empty2.xml | grep -q "operations     : 0"

echo "-- invert + compose cancels"
"$TOOL" invert delta.xml -o inv.xml
"$TOOL" compose old.xml delta.xml inv.xml -o composed.xml
"$TOOL" stats composed.xml | grep -q "operations     : 0"

echo "-- explain"
"$TOOL" explain old.xml delta.xml > explain.txt
grep -q "moved" explain.txt
grep -q "updated" explain.txt

echo "-- batch (parallel pipeline)"
cp old.xml old2.xml
cp new.xml new2.xml
printf 'old.xml\tnew.xml\tdoc-a\nold2.xml\tnew2.xml\tdoc-b\n' > manifest.tsv
"$TOOL" batch manifest.tsv -o warehouse --threads 2 --stats \
  > batch_out.txt 2> batch_stats.txt
grep -q "doc-a: v2" batch_out.txt
grep -q "doc-b: v2" batch_out.txt
grep -q "parse" batch_stats.txt
[ -d warehouse ] || { echo "warehouse directory not saved"; exit 1; }
# A malformed member fails its slot, not the batch.
printf '<broken' > bad.xml
printf 'old.xml\tnew.xml\tdoc-c\nbad.xml\tnew.xml\tdoc-d\n' > manifest2.tsv
if "$TOOL" batch manifest2.tsv --threads 2 > batch2_out.txt 2> batch2_err.txt
then
  echo "expected a nonzero exit with a malformed member"; exit 1
fi
grep -q "doc-c: v2" batch2_out.txt
grep -q "doc-d" batch2_err.txt
grep -q "failed slots" batch2_err.txt
# --fail-fast stops admitting slots once one has failed; with a single
# worker the bad first slot deterministically aborts the rest.
printf 'bad.xml\tnew.xml\tdoc-e\nold.xml\tnew.xml\tdoc-f\n' > manifest3.tsv
if "$TOOL" batch manifest3.tsv --threads 1 --fail-fast \
    > batch3_out.txt 2> batch3_err.txt
then
  echo "expected a nonzero exit under --fail-fast"; exit 1
fi
grep -q "skipped by --fail-fast" batch3_err.txt

echo "-- checkout (reconstruct warehouse versions)"
# The warehouse saved above holds doc-a at v2 (old -> new). The newest
# version checks out by default and re-diffs against new.xml as empty.
"$TOOL" checkout warehouse doc-a -o co_v2.xml --stats 2> co_stats.txt
grep -q "2 of 2" co_stats.txt
"$TOOL" diff co_v2.xml new.xml -o co_empty.xml
"$TOOL" stats co_empty.xml | grep -q "operations     : 0"
# --version 1 reconstructs the past version.
"$TOOL" checkout warehouse doc-a --version 1 -o co_v1.xml
"$TOOL" diff co_v1.xml old.xml -o co_empty1.xml
"$TOOL" stats co_empty1.xml | grep -q "operations     : 0"
# Unknown URL and out-of-range version fail with exit 1.
if "$TOOL" checkout warehouse no-such-doc 2> co_err.txt; then
  echo "expected a NotFound error for an unknown URL"; exit 1
fi
grep -q "error:" co_err.txt
if "$TOOL" checkout warehouse doc-a --version 99 2> co_err2.txt; then
  echo "expected a NotFound error for version 99"; exit 1
fi
grep -q "error:" co_err2.txt
# Bad flag value is a usage error (exit 1 from strict parsing).
if "$TOOL" checkout warehouse doc-a --version zero 2> co_err3.txt; then
  echo "expected an error for a non-numeric --version"; exit 1
fi
# Missing positionals print usage and exit 2.
if "$TOOL" checkout warehouse > /dev/null 2>&1; then
  echo "expected usage exit for missing URL"; exit 1
fi

echo "-- error handling"
if "$TOOL" patch new.xml delta.xml -o /dev/null 2> err.txt; then
  echo "expected a conflict patching the wrong document"; exit 1
fi
grep -q "error:" err.txt
if "$TOOL" diff missing.xml new.xml 2> err2.txt; then
  echo "expected a NotFound error"; exit 1
fi

echo "ALL TOOL CHECKS PASSED"
