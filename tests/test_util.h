#ifndef XYDIFF_TESTS_TEST_UTIL_H_
#define XYDIFF_TESTS_TEST_UTIL_H_

#include <string>

#include "gtest/gtest.h"
#include "util/status.h"
#include "xml/document.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xydiff {

/// Parses XML that the test knows is valid.
inline XmlDocument MustParse(std::string_view text) {
  Result<XmlDocument> doc = ParseXml(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString() << " for: " << text;
  return doc.ok() ? std::move(doc.value()) : XmlDocument();
}

/// Structural equality of two documents with a readable failure message.
inline ::testing::AssertionResult DocsEqual(const XmlDocument& a,
                                            const XmlDocument& b) {
  if (a.root() == nullptr || b.root() == nullptr) {
    if (a.root() == b.root()) return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure() << "one document is empty";
  }
  if (a.root()->DeepEquals(*b.root())) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "documents differ.\n--- A ---\n" << SerializeDocument(a)
         << "\n--- B ---\n" << SerializeDocument(b);
}

/// Like DocsEqual but also requires identical XIDs everywhere.
inline ::testing::AssertionResult DocsEqualWithXids(const XmlDocument& a,
                                                    const XmlDocument& b) {
  ::testing::AssertionResult structural = DocsEqual(a, b);
  if (!structural) return structural;
  SerializeOptions options;
  options.emit_xids = true;
  const std::string sa = SerializeDocument(a, options);
  const std::string sb = SerializeDocument(b, options);
  if (sa == sb) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "XIDs differ.\n--- A ---\n" << sa << "\n--- B ---\n" << sb;
}

#define XY_ASSERT_OK(expr)                                        \
  do {                                                            \
    const ::xydiff::Status _s = (expr);                           \
    ASSERT_TRUE(_s.ok()) << _s.ToString();                        \
  } while (false)

#define XY_EXPECT_OK(expr)                                        \
  do {                                                            \
    const ::xydiff::Status _s = (expr);                           \
    EXPECT_TRUE(_s.ok()) << _s.ToString();                        \
  } while (false)

}  // namespace xydiff

#endif  // XYDIFF_TESTS_TEST_UTIL_H_
