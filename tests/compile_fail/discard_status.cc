// Negative compile test: silently dropping a Status (or Result<T>) must
// NOT compile under the `analyze` preset (-Werror makes the nodiscard
// warning fatal; this file is compiled with -Werror=unused-result so the
// check works under any preset's compiler).
//
// The driver (expect_compile_fail.cmake) compiles this file twice:
// with XY_COMPILE_FAIL_FIXED defined it must succeed (proving the file
// is otherwise well-formed), without it it must fail (proving the
// diagnostic fires, not some unrelated error).

#include "util/status.h"

namespace {

xydiff::Status Flaky() { return xydiff::Status::Corruption("boom"); }

xydiff::Result<int> FlakyValue() {
  return xydiff::Status::NotFound("missing");
}

}  // namespace

int main() {
#if defined(XY_COMPILE_FAIL_FIXED)
  // The disciplined version: both outcomes are looked at.
  if (!Flaky().ok()) return 1;
  if (!FlakyValue().ok()) return 2;
#else
  Flaky();       // BAD: error silently dropped.
  FlakyValue();  // BAD: error (and value) silently dropped.
#endif
  return 0;
}
