# Driver for negative compile tests (see CMakeLists.txt next to it).
#
# Compiles SOURCE twice with COMPILER:
#   1. with -DXY_COMPILE_FAIL_FIXED  -> must SUCCEED (file is well-formed;
#      a failure here would mean the "expected" failure below could be an
#      unrelated error, not the diagnostic under test)
#   2. without it                    -> must FAIL   (the diagnostic fires)
#
# Required -D variables: COMPILER, SOURCE, INCLUDE_DIR, EXTRA_FLAGS
# (EXTRA_FLAGS is ;-separated).

foreach(var COMPILER SOURCE INCLUDE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "expect_compile_fail.cmake: ${var} not set")
  endif()
endforeach()

separate_arguments(flags UNIX_COMMAND "${EXTRA_FLAGS}")
set(base_cmd "${COMPILER}" -std=c++20 "-I${INCLUDE_DIR}" ${flags}
    -c "${SOURCE}" -o "${CMAKE_CURRENT_BINARY_DIR}/compile_fail_probe.o")

execute_process(
  COMMAND ${base_cmd} -DXY_COMPILE_FAIL_FIXED
  RESULT_VARIABLE fixed_result
  OUTPUT_VARIABLE fixed_out ERROR_VARIABLE fixed_err)
if(NOT fixed_result EQUAL 0)
  message(FATAL_ERROR
    "positive control FAILED to compile — the test file is broken beyond "
    "the diagnostic under test:\n${fixed_err}")
endif()

execute_process(
  COMMAND ${base_cmd}
  RESULT_VARIABLE broken_result
  OUTPUT_VARIABLE broken_out ERROR_VARIABLE broken_err)
if(broken_result EQUAL 0)
  message(FATAL_ERROR
    "negative case COMPILED but must not: the diagnostic did not fire "
    "(source: ${SOURCE}, flags: ${EXTRA_FLAGS})")
endif()

message(STATUS "ok: positive control compiles, negative case rejected")
