// Negative compile test: touching an XY_GUARDED_BY member without its
// mutex must NOT compile under Clang's -Wthread-safety -Werror (the
// `analyze` preset). This is the PR 2 submit/steal race, reduced: the
// pool published a task before counting it in `pending_`, so a peer's
// decrement could underflow the counter and wake Wait() early. With the
// annotation, the unlocked access below is rejected at compile time.
//
// The driver compiles this file twice: with XY_COMPILE_FAIL_FIXED the
// access is under MutexLock and must compile; without it the bare
// access must fail. GCC has no capability analysis, so the driver is
// only registered when the compiler understands -Wthread-safety.

#include <cstddef>

#include "util/annotations.h"
#include "util/mutex.h"

namespace {

class MiniPool {
 public:
  void Submit() {
#if defined(XY_COMPILE_FAIL_FIXED)
    xydiff::MutexLock lock(coord_mutex_);
    ++pending_;  // OK: counted under the coordination lock.
#else
    ++pending_;  // BAD: publishing/counting outside the lock — the race.
#endif
  }

  size_t pending() {
    xydiff::MutexLock lock(coord_mutex_);
    return pending_;
  }

 private:
  xydiff::Mutex coord_mutex_;
  size_t pending_ XY_GUARDED_BY(coord_mutex_) = 0;
};

}  // namespace

int main() {
  MiniPool pool;
  pool.Submit();
  return static_cast<int>(pool.pending()) - 1;
}
