#include "delta/compose.h"

#include "core/buld.h"
#include "delta/apply.h"
#include "delta/invert.h"
#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace xydiff {
namespace {

TEST(XidCorrespondenceTest, DetectsUpdateAndInsert) {
  XmlDocument a = MustParse("<r><x>one</x></r>");
  a.AssignInitialXids();  // text=1 x=2 r=3.
  XmlDocument b = a.Clone();
  b.root()->child(0)->child(0)->set_text("changed");
  auto fresh = XmlNode::Element("y");
  fresh->set_xid(b.AllocateXid());
  b.root()->AppendChild(std::move(fresh));

  Result<Delta> delta = DeltaFromXidCorrespondence(&a, &b);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->updates().size(), 1u);
  EXPECT_EQ(delta->inserts().size(), 1u);
  EXPECT_TRUE(delta->deletes().empty());

  XmlDocument patched = a.Clone();
  XY_ASSERT_OK(ApplyDelta(*delta, &patched));
  EXPECT_TRUE(DocsEqualWithXids(patched, b));
}

TEST(XidCorrespondenceTest, RelabelledNodeBecomesDeleteInsert) {
  XmlDocument a = MustParse("<r><x/></r>");
  a.AssignInitialXids();
  XmlDocument b = MustParse("<r><y/></r>");
  // Same xid, different label.
  b.root()->set_xid(a.root()->xid());
  b.root()->child(0)->set_xid(a.root()->child(0)->xid());
  b.set_next_xid(a.next_xid());
  Result<Delta> delta = DeltaFromXidCorrespondence(&a, &b);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->deletes().size(), 1u);
  EXPECT_EQ(delta->inserts().size(), 1u);
}

TEST(XidCorrespondenceTest, RequiresFullXids) {
  XmlDocument a = MustParse("<r/>");
  XmlDocument b = MustParse("<r/>");
  EXPECT_EQ(DeltaFromXidCorrespondence(&a, &b).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(XidCorrespondenceTest, DuplicateXidsRejected) {
  XmlDocument a = MustParse("<r><x/></r>");
  a.root()->set_xid(1);
  a.root()->child(0)->set_xid(1);
  XmlDocument b = MustParse("<r/>");
  b.root()->set_xid(1);
  EXPECT_EQ(DeltaFromXidCorrespondence(&a, &b).status().code(),
            StatusCode::kCorruption);
}

TEST(ComposeTest, ComposedDeltaEqualsSequentialApplication) {
  Rng rng(1234);
  DocGenOptions gen;
  gen.target_bytes = 4096;
  XmlDocument v1 = GenerateDocument(&rng, gen);
  v1.AssignInitialXids();

  ChangeSimOptions sim;
  Result<SimulatedChange> c1 = SimulateChanges(v1, sim, &rng);
  ASSERT_TRUE(c1.ok());
  XmlDocument v2 = std::move(c1->new_version);
  Result<SimulatedChange> c2 = SimulateChanges(v2, sim, &rng);
  ASSERT_TRUE(c2.ok());
  const XmlDocument& v3 = c2->new_version;

  const Delta& d1 = c1->perfect_delta;
  const Delta& d2 = c2->perfect_delta;

  Result<Delta> composed = ComposeDeltas(v1, d1, d2);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();

  XmlDocument direct = v1.Clone();
  XY_ASSERT_OK(ApplyDelta(*composed, &direct));
  EXPECT_TRUE(DocsEqualWithXids(direct, v3));

  EXPECT_EQ(composed->old_next_xid(), d1.old_next_xid());
  EXPECT_EQ(composed->new_next_xid(), d2.new_next_xid());
}

TEST(ComposeTest, ComposeWithInverseIsEmpty) {
  XmlDocument a = MustParse(
      "<r><x>one</x><y>two</y><z><w>three</w></z></r>");
  a.AssignInitialXids();
  XmlDocument b = MustParse(
      "<r><y>two!</y><z/><new>四</new><x>one</x></r>");
  Result<Delta> delta = XyDiff(&a, &b);
  ASSERT_TRUE(delta.ok());

  Result<Delta> composed = ComposeDeltas(a, *delta, InvertDelta(*delta));
  ASSERT_TRUE(composed.ok());
  EXPECT_TRUE(composed->empty())
      << "compose(d, d^-1) produced " << composed->operation_count()
      << " operations";
}

TEST(ComposeTest, InsertThenDeleteCancels) {
  // d1 inserts a node, d2 deletes it again: the composition must not
  // mention it at all.
  XmlDocument v1 = MustParse("<r><a>base</a></r>");
  v1.AssignInitialXids();

  XmlDocument v2_doc = MustParse("<r><a>base</a><tmp>gone soon</tmp></r>");
  XmlDocument v1_copy = v1.Clone();
  Result<Delta> d1 = XyDiff(&v1_copy, &v2_doc);
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(d1->inserts().size(), 1u);

  XmlDocument v3_doc = MustParse("<r><a>base</a></r>");
  Result<Delta> d2 = XyDiff(&v2_doc, &v3_doc);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d2->deletes().size(), 1u);

  Result<Delta> composed = ComposeDeltas(v1, *d1, *d2);
  ASSERT_TRUE(composed.ok());
  EXPECT_TRUE(composed->empty());
}

TEST(ComposeTest, MoveChainsComposeToOneMove) {
  // d1 moves <x> from <a> to <b>; d2 moves it on to <c>. The composition
  // must contain exactly one move, a -> c.
  XmlDocument v1 = MustParse(
      "<r><a><x>payload</x></a><b/><c/></r>");
  v1.AssignInitialXids();
  XmlDocument v2 = MustParse("<r><a/><b><x>payload</x></b><c/></r>");
  XmlDocument v1c = v1.Clone();
  Result<Delta> d1 = XyDiff(&v1c, &v2);
  ASSERT_TRUE(d1.ok());
  ASSERT_EQ(d1->moves().size(), 1u);

  XmlDocument v3 = MustParse("<r><a/><b/><c><x>payload</x></c></r>");
  Result<Delta> d2 = XyDiff(&v2, &v3);
  ASSERT_TRUE(d2.ok());
  ASSERT_EQ(d2->moves().size(), 1u);

  Result<Delta> composed = ComposeDeltas(v1, *d1, *d2);
  ASSERT_TRUE(composed.ok());
  ASSERT_EQ(composed->moves().size(), 1u);
  EXPECT_EQ(composed->operation_count(), 1u);
  // And it lands in <c>.
  XmlDocument replay = v1.Clone();
  XY_ASSERT_OK(ApplyDelta(*composed, &replay));
  EXPECT_TRUE(DocsEqualWithXids(replay, v3));
}

TEST(ComposeTest, UpdateThenDeleteIsJustDelete) {
  XmlDocument v1 = MustParse("<r><t>doomed</t><keep>k</keep></r>");
  v1.AssignInitialXids();
  XmlDocument v2 = MustParse("<r><t>edited</t><keep>k</keep></r>");
  XmlDocument v1c = v1.Clone();
  Result<Delta> d1 = XyDiff(&v1c, &v2);
  ASSERT_TRUE(d1.ok());
  ASSERT_EQ(d1->updates().size(), 1u);
  XmlDocument v3 = MustParse("<r><keep>k</keep></r>");
  Result<Delta> d2 = XyDiff(&v2, &v3);
  ASSERT_TRUE(d2.ok());

  Result<Delta> composed = ComposeDeltas(v1, *d1, *d2);
  ASSERT_TRUE(composed.ok());
  EXPECT_TRUE(composed->updates().empty());
  ASSERT_EQ(composed->deletes().size(), 1u);
  // The composed delete snapshot shows the ORIGINAL (v1) content, so the
  // inverse restores v1 exactly.
  EXPECT_EQ(composed->deletes()[0].subtree->child(0)->text(), "doomed");
}

TEST(ComposeTest, ChainAssociativity) {
  // compose(compose(d1,d2),d3) == compose(d1,compose(d2,d3)) as judged
  // by application results, over a random chain.
  Rng rng(777);
  DocGenOptions gen;
  gen.target_bytes = 2048;
  XmlDocument v1 = GenerateDocument(&rng, gen);
  v1.AssignInitialXids();
  ChangeSimOptions sim;
  Result<SimulatedChange> c1 = SimulateChanges(v1, sim, &rng);
  ASSERT_TRUE(c1.ok());
  Result<SimulatedChange> c2 = SimulateChanges(c1->new_version, sim, &rng);
  ASSERT_TRUE(c2.ok());
  Result<SimulatedChange> c3 = SimulateChanges(c2->new_version, sim, &rng);
  ASSERT_TRUE(c3.ok());

  Result<Delta> d12 =
      ComposeDeltas(v1, c1->perfect_delta, c2->perfect_delta);
  ASSERT_TRUE(d12.ok());
  Result<Delta> left = ComposeDeltas(v1, *d12, c3->perfect_delta);
  ASSERT_TRUE(left.ok());

  Result<Delta> d23 = ComposeDeltas(c1->new_version, c2->perfect_delta,
                                    c3->perfect_delta);
  ASSERT_TRUE(d23.ok());
  Result<Delta> right = ComposeDeltas(v1, c1->perfect_delta, *d23);
  ASSERT_TRUE(right.ok());

  XmlDocument via_left = v1.Clone();
  XY_ASSERT_OK(ApplyDelta(*left, &via_left));
  XmlDocument via_right = v1.Clone();
  XY_ASSERT_OK(ApplyDelta(*right, &via_right));
  EXPECT_TRUE(DocsEqualWithXids(via_left, via_right));
  EXPECT_TRUE(DocsEqualWithXids(via_left, c3->new_version));
}

TEST(ComposeTest, UpdateChainsMerge) {
  XmlDocument v1 = MustParse("<r><t>first</t></r>");
  v1.AssignInitialXids();
  XmlDocument v2 = MustParse("<r><t>second</t></r>");
  XmlDocument v1c = v1.Clone();
  Result<Delta> d1 = XyDiff(&v1c, &v2);
  ASSERT_TRUE(d1.ok());
  XmlDocument v3 = MustParse("<r><t>third</t></r>");
  Result<Delta> d2 = XyDiff(&v2, &v3);
  ASSERT_TRUE(d2.ok());

  Result<Delta> composed = ComposeDeltas(v1, *d1, *d2);
  ASSERT_TRUE(composed.ok());
  ASSERT_EQ(composed->updates().size(), 1u);
  EXPECT_EQ(composed->updates()[0].old_value, "first");
  EXPECT_EQ(composed->updates()[0].new_value, "third");
  EXPECT_EQ(composed->operation_count(), 1u);
}

}  // namespace
}  // namespace xydiff
