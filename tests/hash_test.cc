#include "util/hash.h"

#include <set>
#include <string>

#include "gtest/gtest.h"
#include "util/random.h"

namespace xydiff {
namespace {

TEST(HashTest, Deterministic) {
  EXPECT_EQ(HashBytes("hello"), HashBytes("hello"));
  EXPECT_EQ(HashBytes(""), HashBytes(""));
}

TEST(HashTest, SeedChangesValue) {
  EXPECT_NE(HashBytes("hello", 0), HashBytes("hello", 1));
}

TEST(HashTest, DifferentInputsDiffer) {
  EXPECT_NE(HashBytes("hello"), HashBytes("hellp"));
  EXPECT_NE(HashBytes("a"), HashBytes("aa"));
  EXPECT_NE(HashBytes(""), HashBytes("\0", 1));
}

TEST(HashTest, AllLengthBranches) {
  // Exercise the <4, <8, <32 and >=32 byte code paths.
  std::set<Signature> seen;
  std::string s;
  for (int len = 0; len <= 100; ++len) {
    EXPECT_TRUE(seen.insert(HashBytes(s)).second) << "collision at " << len;
    s += static_cast<char>('a' + len % 26);
  }
}

TEST(HashTest, CombineIsOrderSensitive) {
  const Signature a = HashBytes("a");
  const Signature b = HashBytes("b");
  EXPECT_NE(HashCombine(HashCombine(0, a), b),
            HashCombine(HashCombine(0, b), a));
}

TEST(HashTest, CombineStringOverload) {
  EXPECT_EQ(HashCombine(1, "xyz"), HashCombine(1, HashBytes("xyz")));
}

TEST(HashTest, FinalizeAvalanches) {
  // Neighbouring accumulators land far apart after finalization.
  const Signature f1 = HashFinalize(1);
  const Signature f2 = HashFinalize(2);
  EXPECT_NE(f1, f2);
  int differing_bits = __builtin_popcountll(f1 ^ f2);
  EXPECT_GT(differing_bits, 10);
}

TEST(HashTest, NoCollisionsOnRandomCorpus) {
  Rng rng(99);
  std::set<Signature> seen;
  std::set<std::string> inputs;
  for (int i = 0; i < 20000; ++i) {
    std::string word = rng.NextWord(1, 20);
    if (!inputs.insert(word).second) continue;
    EXPECT_TRUE(seen.insert(HashBytes(word)).second)
        << "collision for " << word;
  }
}

TEST(HashTest, ChainedCombineDistinguishesSequences) {
  // Simulates sibling lists: (x)(yz) vs (xy)(z) must differ.
  const Signature x = HashBytes("x");
  const Signature y = HashBytes("y");
  const Signature z = HashBytes("z");
  const Signature xy = HashBytes("xy");
  const Signature yz = HashBytes("yz");
  EXPECT_NE(HashCombine(HashCombine(0, x), yz),
            HashCombine(HashCombine(0, xy), z));
  (void)y;  // Kept for symmetry with x/z; not needed by the assertions.
}

}  // namespace
}  // namespace xydiff
