// Correctness must hold under every combination of tuning knobs: the
// knobs trade quality for speed, never correctness. This sweep runs the
// full round-trip invariant (apply(diff(A,B),A) == B, inverse restores A)
// across the DiffOptions matrix.

#include <sstream>

#include "core/buld.h"
#include "delta/apply.h"
#include "delta/delta_xml.h"
#include "delta/invert.h"
#include "delta/validate.h"
#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace xydiff {
namespace {

struct MatrixCase {
  bool use_id_attributes;
  bool text_log_weight;
  bool detect_moves;
  bool compress_updates;
  bool accept_unique_candidate;
  size_t lops_window;
  int propagation_passes;
  double ancestor_depth_factor;
  bool eager_sibling_matching = false;

  std::string Name() const {
    std::ostringstream os;
    os << (use_id_attributes ? "ids" : "noids") << "_"
       << (text_log_weight ? "logw" : "flatw") << "_"
       << (detect_moves ? "mov" : "nomov") << "_"
       << (compress_updates ? "comp" : "full") << "_"
       << (accept_unique_candidate ? "uniq" : "nouniq") << "_w"
       << lops_window << "_p" << propagation_passes << "_d"
       << ancestor_depth_factor << (eager_sibling_matching ? "_eager" : "");
    return os.str();
  }
};

class OptionsMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(OptionsMatrix, RoundTripHoldsUnderEveryKnobCombination) {
  const MatrixCase& c = GetParam();
  DiffOptions options;
  options.use_id_attributes = c.use_id_attributes;
  options.text_log_weight = c.text_log_weight;
  options.detect_moves = c.detect_moves;
  options.compress_updates = c.compress_updates;
  options.accept_unique_candidate = c.accept_unique_candidate;
  options.lops_window = c.lops_window;
  options.propagation_passes = c.propagation_passes;
  options.ancestor_depth_factor = c.ancestor_depth_factor;
  options.eager_sibling_matching = c.eager_sibling_matching;

  Rng rng(0xC0FFEE ^ std::hash<std::string>{}(c.Name()));
  for (int round = 0; round < 3; ++round) {
    DocGenOptions gen;
    gen.target_bytes = 4096;
    gen.with_id_attributes = c.use_id_attributes;
    XmlDocument base = GenerateDocument(&rng, gen);
    base.AssignInitialXids();
    ChangeSimOptions sim;
    sim.move_probability = 0.2;  // Stress the move paths in particular.
    Result<SimulatedChange> change = SimulateChanges(base, sim, &rng);
    ASSERT_TRUE(change.ok());

    XmlDocument a = base.Clone();
    XmlDocument b = change->new_version.Clone();
    Result<Delta> delta = XyDiff(&a, &b, options);
    ASSERT_TRUE(delta.ok()) << c.Name();
    XY_ASSERT_OK(ValidateDelta(*delta));
    if (!c.detect_moves) {
      EXPECT_TRUE(delta->moves().empty());
    }

    // Forward.
    XmlDocument patched = base.Clone();
    XY_ASSERT_OK(ApplyDelta(*delta, &patched));
    ASSERT_TRUE(DocsEqualWithXids(patched, b)) << c.Name();
    // Backward.
    XY_ASSERT_OK(ApplyDelta(InvertDelta(*delta), &patched));
    ASSERT_TRUE(DocsEqualWithXids(patched, a)) << c.Name();
    // Serialized.
    Result<Delta> reparsed = ParseDelta(SerializeDelta(*delta));
    ASSERT_TRUE(reparsed.ok()) << c.Name();
    XmlDocument patched2 = base.Clone();
    XY_ASSERT_OK(ApplyDelta(*reparsed, &patched2));
    ASSERT_TRUE(DocsEqualWithXids(patched2, b)) << c.Name();
  }
}

std::vector<MatrixCase> MakeMatrix() {
  std::vector<MatrixCase> cases;
  // Axis-aligned sweep around the defaults plus a few corners.
  const MatrixCase defaults{true, true, true, false, true, 0, 1, 1.0};
  cases.push_back(defaults);
  for (bool ids : {false}) {
    MatrixCase c = defaults;
    c.use_id_attributes = ids;
    cases.push_back(c);
  }
  for (bool logw : {false}) {
    MatrixCase c = defaults;
    c.text_log_weight = logw;
    cases.push_back(c);
  }
  for (bool moves : {false}) {
    MatrixCase c = defaults;
    c.detect_moves = moves;
    cases.push_back(c);
  }
  for (bool comp : {true}) {
    MatrixCase c = defaults;
    c.compress_updates = comp;
    cases.push_back(c);
  }
  for (bool uniq : {false}) {
    MatrixCase c = defaults;
    c.accept_unique_candidate = uniq;
    cases.push_back(c);
  }
  for (size_t window : {3u, 50u}) {
    MatrixCase c = defaults;
    c.lops_window = window;
    cases.push_back(c);
  }
  for (int passes : {2, 4}) {
    MatrixCase c = defaults;
    c.propagation_passes = passes;
    cases.push_back(c);
  }
  for (double depth : {0.0, 4.0}) {
    MatrixCase c = defaults;
    c.ancestor_depth_factor = depth;
    cases.push_back(c);
  }
  {
    MatrixCase c = defaults;
    c.eager_sibling_matching = true;
    cases.push_back(c);
  }
  // Corners: everything off / everything cranked.
  cases.push_back(MatrixCase{false, false, false, true, false, 4, 1, 0.0});
  cases.push_back(MatrixCase{true, true, true, true, true, 50, 4, 8.0});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, OptionsMatrix, ::testing::ValuesIn(MakeMatrix()),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      std::string name = info.param.Name();
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace xydiff
