#include "version/storage.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "delta/delta_xml.h"
#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/hash.h"
#include "util/random.h"

namespace xydiff {
namespace {

namespace fs = std::filesystem;

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("xydiff_storage_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Dir() const { return dir_.string(); }

  fs::path dir_;
};

TEST_F(StorageTest, DocumentWithXidsRoundTrip) {
  XmlDocument doc = MustParse("<r><a>text</a><b k=\"v\"/></r>");
  doc.AssignInitialXids();
  doc.AllocateXid();  // Advance the allocator past the tree.
  fs::create_directories(dir_);
  const std::string xml = Dir() + "/doc.xml";
  const std::string meta = Dir() + "/doc.meta";
  XY_ASSERT_OK(SaveDocumentWithXids(doc, xml, meta));

  Result<XmlDocument> loaded = LoadDocumentWithXids(xml, meta);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(DocsEqualWithXids(doc, *loaded));
  EXPECT_EQ(loaded->next_xid(), doc.next_xid());
}

TEST_F(StorageTest, DocumentWithNonContiguousXids) {
  // After a few diffs, XIDs have holes; the XID-map must cover that.
  XmlDocument doc = MustParse("<r><a>t</a></r>");
  doc.root()->set_xid(50);
  doc.root()->child(0)->set_xid(7);
  doc.root()->child(0)->child(0)->set_xid(23);
  doc.set_next_xid(51);
  fs::create_directories(dir_);
  XY_ASSERT_OK(
      SaveDocumentWithXids(doc, Dir() + "/d.xml", Dir() + "/d.meta"));
  Result<XmlDocument> loaded =
      LoadDocumentWithXids(Dir() + "/d.xml", Dir() + "/d.meta");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(DocsEqualWithXids(doc, *loaded));
}

TEST_F(StorageTest, IdAttributeDeclarationsSurvive) {
  XmlDocument doc = MustParse(
      "<!DOCTYPE r [<!ATTLIST p id ID #IMPLIED>]><r><p id=\"x\"/></r>");
  doc.AssignInitialXids();
  fs::create_directories(dir_);
  XY_ASSERT_OK(
      SaveDocumentWithXids(doc, Dir() + "/d.xml", Dir() + "/d.meta"));
  Result<XmlDocument> loaded =
      LoadDocumentWithXids(Dir() + "/d.xml", Dir() + "/d.meta");
  ASSERT_TRUE(loaded.ok());
  ASSERT_NE(loaded->dtd().IdAttributeFor("p"), nullptr);
}

TEST_F(StorageTest, RepositoryRoundTrip) {
  Rng rng(5);
  DocGenOptions gen;
  gen.target_bytes = 2048;
  VersionRepository repo(GenerateDocument(&rng, gen));
  for (int v = 0; v < 4; ++v) {
    Result<SimulatedChange> change =
        SimulateChanges(repo.current(), ChangeSimOptions{}, &rng);
    ASSERT_TRUE(change.ok());
    ASSERT_TRUE(repo.Commit(std::move(change->new_version)).ok());
  }

  XY_ASSERT_OK(SaveRepository(repo, Dir()));
  Result<VersionRepository> loaded = LoadRepository(Dir());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->version_count(), repo.version_count());
  EXPECT_TRUE(DocsEqualWithXids(loaded->current(), repo.current()));
  // Every historical version reconstructs identically.
  for (int v = 1; v <= repo.version_count(); ++v) {
    Result<XmlDocument> original = repo.Checkout(v);
    Result<XmlDocument> reloaded = loaded->Checkout(v);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(reloaded.ok()) << "version " << v << ": "
                               << reloaded.status().ToString();
    EXPECT_TRUE(DocsEqualWithXids(*original, *reloaded)) << "version " << v;
  }
}

TEST_F(StorageTest, SaveTruncatesStaleChain) {
  Rng rng(6);
  DocGenOptions gen;
  gen.target_bytes = 1024;
  VersionRepository long_repo(GenerateDocument(&rng, gen));
  for (int v = 0; v < 3; ++v) {
    Result<SimulatedChange> change =
        SimulateChanges(long_repo.current(), ChangeSimOptions{}, &rng);
    ASSERT_TRUE(change.ok());
    ASSERT_TRUE(long_repo.Commit(std::move(change->new_version)).ok());
  }
  XY_ASSERT_OK(SaveRepository(long_repo, Dir()));

  // Overwrite with a single-version repository; stale deltas must go.
  VersionRepository short_repo(GenerateDocument(&rng, gen));
  XY_ASSERT_OK(SaveRepository(short_repo, Dir()));
  Result<VersionRepository> loaded = LoadRepository(Dir());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->version_count(), 1);
}

TEST_F(StorageTest, LoadMissingDirectoryFails) {
  Result<VersionRepository> loaded = LoadRepository(Dir() + "/nonexistent");
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(StorageTest, CorruptMetaRejected) {
  fs::create_directories(dir_);
  XmlDocument doc = MustParse("<r/>");
  doc.AssignInitialXids();
  XY_ASSERT_OK(
      SaveDocumentWithXids(doc, Dir() + "/d.xml", Dir() + "/d.meta"));
  // Clobber the meta file.
  {
    std::ofstream bad(Dir() + "/d.meta", std::ios::trunc);
    bad << "garbage\n";
  }
  Result<XmlDocument> loaded =
      LoadDocumentWithXids(Dir() + "/d.xml", Dir() + "/d.meta");
  EXPECT_FALSE(loaded.ok());
}

// --- recovery from out-of-band damage ---------------------------------
// These tests vandalize stored files directly (not through an Env):
// bit rot and truncation by other processes is exactly the damage the
// MANIFEST checksums exist to catch.

VersionRepository MakeRepo(uint64_t seed, int extra_versions) {
  Rng rng(seed);
  DocGenOptions gen;
  gen.target_bytes = 1024;
  VersionRepository repo(GenerateDocument(&rng, gen));
  for (int v = 0; v < extra_versions; ++v) {
    Result<SimulatedChange> change =
        SimulateChanges(repo.current(), ChangeSimOptions{}, &rng);
    EXPECT_TRUE(change.ok());
    EXPECT_TRUE(repo.Commit(std::move(change->new_version)).ok());
  }
  return repo;
}

void FlipByte(const std::string& path) {
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x40;  // Same size, different CRC.
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST_F(StorageTest, BitFlippedDeltaQuarantinesUnreachableChain) {
  VersionRepository repo = MakeRepo(7, 4);  // 5 versions, 4 deltas.
  XY_ASSERT_OK(SaveRepository(repo, Dir()));
  // delta.000002.bin transforms version 2 -> 3; corrupting it makes
  // versions 1 and 2 unreachable (reconstruction walks backward).
  FlipByte(Dir() + "/delta.000002.bin");

  RecoveryReport report;
  Result<VersionRepository> loaded = LoadRepository(Dir(), nullptr, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(report.clean);
  EXPECT_TRUE(report.manifest_valid);
  EXPECT_EQ(report.dropped_deltas, 2u);
  EXPECT_EQ(report.recovered_version_count, 3);
  ASSERT_EQ(report.quarantined.size(), 2u) << report.ToString();
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / "delta.000001.bin"));
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / "delta.000002.bin"));

  // The surviving suffix reloads byte-identically (XIDs included):
  // loaded version k is original version k + 2.
  EXPECT_EQ(loaded->version_count(), 3);
  for (int v = 1; v <= 3; ++v) {
    Result<XmlDocument> original = repo.Checkout(v + 2);
    Result<XmlDocument> recovered = loaded->Checkout(v);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_TRUE(DocsEqualWithXids(*original, *recovered)) << "version " << v;
  }

  // A reload of the healed store sees the quarantined deltas as simply
  // missing from the manifest-listed set and reports them again — the
  // store is degraded but stable, never a hybrid.
  Result<VersionRepository> again = LoadRepository(Dir());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(DocsEqualWithXids(again->current(), repo.current()));
}

TEST_F(StorageTest, TruncatedDeltaQuarantinesUnreachableChain) {
  VersionRepository repo = MakeRepo(8, 3);  // 4 versions, 3 deltas.
  XY_ASSERT_OK(SaveRepository(repo, Dir()));
  {
    // Keep a syntactically broken prefix, as a torn write would.
    std::ofstream out(Dir() + "/delta.000001.bin",
                      std::ios::binary | std::ios::trunc);
    out << "XYDB";
  }

  RecoveryReport report;
  Result<VersionRepository> loaded = LoadRepository(Dir(), nullptr, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(report.clean);
  EXPECT_EQ(report.dropped_deltas, 1u);
  EXPECT_EQ(loaded->version_count(), 3);
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / "delta.000001.bin"));
  EXPECT_TRUE(DocsEqualWithXids(loaded->current(), repo.current()));
  for (int v = 1; v <= 3; ++v) {
    Result<XmlDocument> original = repo.Checkout(v + 1);
    Result<XmlDocument> recovered = loaded->Checkout(v);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(recovered.ok());
    EXPECT_TRUE(DocsEqualWithXids(*original, *recovered)) << "version " << v;
  }
}

TEST_F(StorageTest, BitFlippedCurrentMetaQuarantinedAndReported) {
  VersionRepository repo = MakeRepo(9, 2);
  XY_ASSERT_OK(SaveRepository(repo, Dir()));
  FlipByte(Dir() + "/current.000001.meta");

  RecoveryReport report;
  Result<VersionRepository> loaded = LoadRepository(Dir(), nullptr, &report);
  // No surviving fallback epoch: the newest version is genuinely gone,
  // and the loader must say so rather than fabricate one.
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_FALSE(report.clean);
  EXPECT_TRUE(report.manifest_valid);
  ASSERT_EQ(report.quarantined.size(), 1u) << report.ToString();
  EXPECT_EQ(report.quarantined[0], "current.000001.meta");
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / "current.000001.meta"));
  EXPECT_FALSE(report.notes.empty());
}

TEST_F(StorageTest, TruncatedCurrentXmlQuarantinedAndReported) {
  VersionRepository repo = MakeRepo(10, 1);
  XY_ASSERT_OK(SaveRepository(repo, Dir()));
  XY_ASSERT_OK(SaveRepository(repo, Dir()));  // Second epoch, same chain.
  {
    std::ofstream out(Dir() + "/current.000002.xml",
                      std::ios::binary | std::ios::trunc);
    out << "<r";
  }

  RecoveryReport report;
  Result<VersionRepository> loaded = LoadRepository(Dir(), nullptr, &report);
  // The previous epoch's files were cleaned up after the second commit,
  // so there is no fallback; the report still pins down what was lost.
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  ASSERT_EQ(report.quarantined.size(), 1u) << report.ToString();
  EXPECT_EQ(report.quarantined[0], "current.000002.xml");
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / "current.000002.xml"));
}

TEST_F(StorageTest, CorruptManifestSalvagesNewestEpoch) {
  VersionRepository repo = MakeRepo(11, 2);
  XY_ASSERT_OK(SaveRepository(repo, Dir()));
  FlipByte(Dir() + "/MANIFEST");

  RecoveryReport report;
  Result<VersionRepository> loaded = LoadRepository(Dir(), nullptr, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(report.manifest_valid);
  EXPECT_FALSE(report.clean);
  EXPECT_EQ(loaded->version_count(), repo.version_count());
  EXPECT_TRUE(DocsEqualWithXids(loaded->current(), repo.current()));
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / "MANIFEST"));
}

TEST_F(StorageTest, CleanLoadReportsClean) {
  VersionRepository repo = MakeRepo(12, 2);
  XY_ASSERT_OK(SaveRepository(repo, Dir()));
  RecoveryReport report;
  Result<VersionRepository> loaded = LoadRepository(Dir(), nullptr, &report);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(report.clean);
  EXPECT_TRUE(report.manifest_valid);
  EXPECT_FALSE(report.used_fallback);
  EXPECT_EQ(report.dropped_deltas, 0u);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_EQ(report.recovered_version_count, repo.version_count());
}

// --- reconstruction index persistence ---------------------------------

/// A repository with an active index deep enough for two skip levels
/// (9 versions = 8 chain deltas: spans 2, 4, and 8 all complete).
VersionRepository MakeIndexedRepo(uint64_t seed, int extra_versions) {
  VersionRepository repo = MakeRepo(seed, 0);
  EXPECT_TRUE(repo.EnsureReconstructionIndex().ok());
  Rng rng(seed + 1000);
  for (int v = 0; v < extra_versions; ++v) {
    Result<SimulatedChange> change =
        SimulateChanges(repo.current(), ChangeSimOptions{}, &rng);
    EXPECT_TRUE(change.ok());
    EXPECT_TRUE(repo.Commit(std::move(change->new_version)).ok());
  }
  return repo;
}

void ExpectAllVersionsEqual(const VersionRepository& expected,
                            const VersionRepository& actual) {
  ASSERT_EQ(actual.version_count(), expected.version_count());
  for (int v = 1; v <= expected.version_count(); ++v) {
    Result<XmlDocument> want = expected.Checkout(v);
    Result<XmlDocument> got = actual.Checkout(v);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok()) << "version " << v << ": "
                          << got.status().ToString();
    EXPECT_TRUE(DocsEqualWithXids(*want, *got)) << "version " << v;
  }
}

TEST_F(StorageTest, PersistedIndexSurvivesReload) {
  VersionRepository repo = MakeIndexedRepo(20, 8);
  ASSERT_EQ(repo.reconstruction_index().levels.size(), 3u);
  XY_ASSERT_OK(SaveRepository(repo, Dir()));
  EXPECT_TRUE(fs::exists(dir_ / "checkpoint.000001.xml"));
  EXPECT_TRUE(fs::exists(dir_ / "skip.000002.000000.bin"));

  RecoveryReport report;
  Result<VersionRepository> loaded = LoadRepository(Dir(), nullptr, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(report.clean);
  ASSERT_TRUE(loaded->reconstruction_index().checkpoint.has_value());
  EXPECT_EQ(loaded->reconstruction_index().levels.size(), 3u);

  // The loaded index actually drives reconstruction forward.
  CheckoutStats stats;
  Result<XmlDocument> v1 = loaded->Checkout(1, &stats);
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(stats.forward);
  EXPECT_EQ(stats.applications, 0u);
  ExpectAllVersionsEqual(repo, *loaded);

  // A loaded repository keeps maintaining the index across commits and
  // re-saves: the common reopen-commit-save cycle stays O(log n).
  Rng rng(99);
  Result<SimulatedChange> change =
      SimulateChanges(loaded->current(), ChangeSimOptions{}, &rng);
  ASSERT_TRUE(change.ok());
  ASSERT_TRUE(loaded->Commit(std::move(change->new_version)).ok());
  XY_ASSERT_OK(SaveRepository(*loaded, Dir()));
  Result<VersionRepository> again = LoadRepository(Dir(), nullptr, &report);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(report.clean);
  ExpectAllVersionsEqual(*loaded, *again);
}

TEST_F(StorageTest, CorruptSkipFileDropsIndexKeepsChain) {
  VersionRepository repo = MakeIndexedRepo(21, 8);
  XY_ASSERT_OK(SaveRepository(repo, Dir()));
  FlipByte(Dir() + "/skip.000001.000000.bin");

  RecoveryReport report;
  Result<VersionRepository> loaded = LoadRepository(Dir(), nullptr, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // The chain itself is intact — versions are NOT dropped; only the
  // derived index is discarded and the bad file quarantined.
  EXPECT_FALSE(report.clean);
  EXPECT_EQ(report.dropped_deltas, 0u);
  EXPECT_EQ(loaded->version_count(), repo.version_count());
  EXPECT_FALSE(loaded->reconstruction_index().checkpoint.has_value());
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / "skip.000001.000000.bin"));

  CheckoutStats stats;
  Result<XmlDocument> v1 = loaded->Checkout(1, &stats);
  ASSERT_TRUE(v1.ok());
  EXPECT_FALSE(stats.forward);  // Plain-chain fallback.
  ExpectAllVersionsEqual(repo, *loaded);

  // The degraded store re-saves and heals: the surviving in-memory
  // chain rebuilds its index on demand and persists it again.
  XY_ASSERT_OK(loaded->EnsureReconstructionIndex());
  XY_ASSERT_OK(SaveRepository(*loaded, Dir()));
  Result<VersionRepository> healed = LoadRepository(Dir(), nullptr, &report);
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE(report.clean);
  EXPECT_TRUE(healed->reconstruction_index().checkpoint.has_value());
  ExpectAllVersionsEqual(repo, *healed);
}

TEST_F(StorageTest, CorruptCheckpointDropsIndexKeepsChain) {
  VersionRepository repo = MakeIndexedRepo(22, 4);
  XY_ASSERT_OK(SaveRepository(repo, Dir()));
  FlipByte(Dir() + "/checkpoint.000001.meta");

  RecoveryReport report;
  Result<VersionRepository> loaded = LoadRepository(Dir(), nullptr, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(report.clean);
  EXPECT_EQ(report.dropped_deltas, 0u);
  EXPECT_FALSE(loaded->reconstruction_index().checkpoint.has_value());
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / "checkpoint.000001.meta"));
  ExpectAllVersionsEqual(repo, *loaded);
}

// --- legacy XML delta chains ------------------------------------------

std::string TestHex64(uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

/// Rewrites one `file NAME SIZE CRC` manifest entry (and the manifest's
/// self-checksum) so the store references `new_name` instead — the
/// on-disk state a pre-codec version of this library would have left.
void RewriteManifestEntry(const fs::path& dir, const std::string& old_name,
                          const std::string& new_name,
                          const std::string& new_content) {
  std::string manifest;
  {
    std::ifstream in(dir / "MANIFEST", std::ios::binary);
    ASSERT_TRUE(in);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    manifest = buffer.str();
  }
  std::string body = manifest.substr(0, manifest.rfind("crc "));
  const size_t entry = body.find("file " + old_name + " ");
  ASSERT_NE(entry, std::string::npos) << body;
  const size_t entry_end = body.find('\n', entry);
  body.replace(entry, entry_end - entry,
               "file " + new_name + " " + std::to_string(new_content.size()) +
                   " " + TestHex64(Crc64(new_content)));
  {
    std::ofstream out(dir / "MANIFEST", std::ios::binary | std::ios::trunc);
    out << body << "crc " << TestHex64(Crc64(body)) << "\n";
  }
}

TEST_F(StorageTest, LegacyXmlDeltaLoadsAndUpgradesOnSave) {
  VersionRepository repo = MakeRepo(23, 3);  // 4 versions, 3 deltas.
  XY_ASSERT_OK(SaveRepository(repo, Dir()));

  // Regress delta 2 to the legacy format: XML bytes on disk, manifest
  // entry rewritten, binary file gone — a mixed-format chain.
  Result<const Delta*> d2 = repo.DeltaFor(2);
  ASSERT_TRUE(d2.ok());
  const std::string xml = SerializeDelta(**d2);
  {
    std::ofstream out(dir_ / "delta.000002.xml",
                      std::ios::binary | std::ios::trunc);
    out << xml;
  }
  RewriteManifestEntry(dir_, "delta.000002.bin", "delta.000002.xml", xml);
  fs::remove(dir_ / "delta.000002.bin");

  RecoveryReport report;
  Result<VersionRepository> loaded = LoadRepository(Dir(), nullptr, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(report.clean) << report.ToString();
  ExpectAllVersionsEqual(repo, *loaded);

  // The next save upgrades the whole chain to binary and the stale XML
  // file is cleaned up as unreferenced.
  XY_ASSERT_OK(SaveRepository(*loaded, Dir()));
  EXPECT_TRUE(fs::exists(dir_ / "delta.000002.bin"));
  EXPECT_FALSE(fs::exists(dir_ / "delta.000002.xml"));
  Result<VersionRepository> upgraded = LoadRepository(Dir(), nullptr, &report);
  ASSERT_TRUE(upgraded.ok());
  EXPECT_TRUE(report.clean);
  ExpectAllVersionsEqual(repo, *upgraded);
}

TEST_F(StorageTest, MixedFormatChainRecoversFromCorruption) {
  VersionRepository repo = MakeRepo(24, 4);  // 5 versions, 4 deltas.
  XY_ASSERT_OK(SaveRepository(repo, Dir()));
  // Delta 1 becomes legacy XML, then delta 3 rots: recovery must sever
  // versions 1-3 (dropping both formats' files) and keep 4-5.
  Result<const Delta*> d1 = repo.DeltaFor(1);
  ASSERT_TRUE(d1.ok());
  const std::string xml = SerializeDelta(**d1);
  {
    std::ofstream out(dir_ / "delta.000001.xml",
                      std::ios::binary | std::ios::trunc);
    out << xml;
  }
  RewriteManifestEntry(dir_, "delta.000001.bin", "delta.000001.xml", xml);
  fs::remove(dir_ / "delta.000001.bin");
  FlipByte(Dir() + "/delta.000003.bin");

  RecoveryReport report;
  Result<VersionRepository> loaded = LoadRepository(Dir(), nullptr, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(report.clean);
  EXPECT_EQ(report.dropped_deltas, 3u);
  EXPECT_EQ(loaded->version_count(), 2);
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / "delta.000001.xml"));
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / "delta.000003.bin"));
  for (int v = 1; v <= 2; ++v) {
    Result<XmlDocument> original = repo.Checkout(v + 3);
    Result<XmlDocument> recovered = loaded->Checkout(v);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(recovered.ok());
    EXPECT_TRUE(DocsEqualWithXids(*original, *recovered)) << "version " << v;
  }
}

TEST_F(StorageTest, MetaTreeSizeMismatchRejected) {
  fs::create_directories(dir_);
  XmlDocument doc = MustParse("<r><a/></r>");
  doc.AssignInitialXids();
  XY_ASSERT_OK(
      SaveDocumentWithXids(doc, Dir() + "/d.xml", Dir() + "/d.meta"));
  // Replace the XML with a differently sized tree.
  {
    std::ofstream bad(Dir() + "/d.xml", std::ios::trunc);
    bad << "<r><a/><b/></r>";
  }
  Result<XmlDocument> loaded =
      LoadDocumentWithXids(Dir() + "/d.xml", Dir() + "/d.meta");
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace xydiff
