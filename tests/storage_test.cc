#include "version/storage.h"

#include <filesystem>
#include <fstream>

#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace xydiff {
namespace {

namespace fs = std::filesystem;

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("xydiff_storage_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Dir() const { return dir_.string(); }

  fs::path dir_;
};

TEST_F(StorageTest, DocumentWithXidsRoundTrip) {
  XmlDocument doc = MustParse("<r><a>text</a><b k=\"v\"/></r>");
  doc.AssignInitialXids();
  doc.AllocateXid();  // Advance the allocator past the tree.
  fs::create_directories(dir_);
  const std::string xml = Dir() + "/doc.xml";
  const std::string meta = Dir() + "/doc.meta";
  XY_ASSERT_OK(SaveDocumentWithXids(doc, xml, meta));

  Result<XmlDocument> loaded = LoadDocumentWithXids(xml, meta);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(DocsEqualWithXids(doc, *loaded));
  EXPECT_EQ(loaded->next_xid(), doc.next_xid());
}

TEST_F(StorageTest, DocumentWithNonContiguousXids) {
  // After a few diffs, XIDs have holes; the XID-map must cover that.
  XmlDocument doc = MustParse("<r><a>t</a></r>");
  doc.root()->set_xid(50);
  doc.root()->child(0)->set_xid(7);
  doc.root()->child(0)->child(0)->set_xid(23);
  doc.set_next_xid(51);
  fs::create_directories(dir_);
  XY_ASSERT_OK(
      SaveDocumentWithXids(doc, Dir() + "/d.xml", Dir() + "/d.meta"));
  Result<XmlDocument> loaded =
      LoadDocumentWithXids(Dir() + "/d.xml", Dir() + "/d.meta");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(DocsEqualWithXids(doc, *loaded));
}

TEST_F(StorageTest, IdAttributeDeclarationsSurvive) {
  XmlDocument doc = MustParse(
      "<!DOCTYPE r [<!ATTLIST p id ID #IMPLIED>]><r><p id=\"x\"/></r>");
  doc.AssignInitialXids();
  fs::create_directories(dir_);
  XY_ASSERT_OK(
      SaveDocumentWithXids(doc, Dir() + "/d.xml", Dir() + "/d.meta"));
  Result<XmlDocument> loaded =
      LoadDocumentWithXids(Dir() + "/d.xml", Dir() + "/d.meta");
  ASSERT_TRUE(loaded.ok());
  ASSERT_NE(loaded->dtd().IdAttributeFor("p"), nullptr);
}

TEST_F(StorageTest, RepositoryRoundTrip) {
  Rng rng(5);
  DocGenOptions gen;
  gen.target_bytes = 2048;
  VersionRepository repo(GenerateDocument(&rng, gen));
  for (int v = 0; v < 4; ++v) {
    Result<SimulatedChange> change =
        SimulateChanges(repo.current(), ChangeSimOptions{}, &rng);
    ASSERT_TRUE(change.ok());
    ASSERT_TRUE(repo.Commit(std::move(change->new_version)).ok());
  }

  XY_ASSERT_OK(SaveRepository(repo, Dir()));
  Result<VersionRepository> loaded = LoadRepository(Dir());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->version_count(), repo.version_count());
  EXPECT_TRUE(DocsEqualWithXids(loaded->current(), repo.current()));
  // Every historical version reconstructs identically.
  for (int v = 1; v <= repo.version_count(); ++v) {
    Result<XmlDocument> original = repo.Checkout(v);
    Result<XmlDocument> reloaded = loaded->Checkout(v);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(reloaded.ok()) << "version " << v << ": "
                               << reloaded.status().ToString();
    EXPECT_TRUE(DocsEqualWithXids(*original, *reloaded)) << "version " << v;
  }
}

TEST_F(StorageTest, SaveTruncatesStaleChain) {
  Rng rng(6);
  DocGenOptions gen;
  gen.target_bytes = 1024;
  VersionRepository long_repo(GenerateDocument(&rng, gen));
  for (int v = 0; v < 3; ++v) {
    Result<SimulatedChange> change =
        SimulateChanges(long_repo.current(), ChangeSimOptions{}, &rng);
    ASSERT_TRUE(change.ok());
    ASSERT_TRUE(long_repo.Commit(std::move(change->new_version)).ok());
  }
  XY_ASSERT_OK(SaveRepository(long_repo, Dir()));

  // Overwrite with a single-version repository; stale deltas must go.
  VersionRepository short_repo(GenerateDocument(&rng, gen));
  XY_ASSERT_OK(SaveRepository(short_repo, Dir()));
  Result<VersionRepository> loaded = LoadRepository(Dir());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->version_count(), 1);
}

TEST_F(StorageTest, LoadMissingDirectoryFails) {
  Result<VersionRepository> loaded = LoadRepository(Dir() + "/nonexistent");
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(StorageTest, CorruptMetaRejected) {
  fs::create_directories(dir_);
  XmlDocument doc = MustParse("<r/>");
  doc.AssignInitialXids();
  XY_ASSERT_OK(
      SaveDocumentWithXids(doc, Dir() + "/d.xml", Dir() + "/d.meta"));
  // Clobber the meta file.
  {
    std::ofstream bad(Dir() + "/d.meta", std::ios::trunc);
    bad << "garbage\n";
  }
  Result<XmlDocument> loaded =
      LoadDocumentWithXids(Dir() + "/d.xml", Dir() + "/d.meta");
  EXPECT_FALSE(loaded.ok());
}

TEST_F(StorageTest, MetaTreeSizeMismatchRejected) {
  fs::create_directories(dir_);
  XmlDocument doc = MustParse("<r><a/></r>");
  doc.AssignInitialXids();
  XY_ASSERT_OK(
      SaveDocumentWithXids(doc, Dir() + "/d.xml", Dir() + "/d.meta"));
  // Replace the XML with a differently sized tree.
  {
    std::ofstream bad(Dir() + "/d.xml", std::ios::trunc);
    bad << "<r><a/><b/></r>";
  }
  Result<XmlDocument> loaded =
      LoadDocumentWithXids(Dir() + "/d.xml", Dir() + "/d.meta");
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace xydiff
