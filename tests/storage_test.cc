#include "version/storage.h"

#include <filesystem>
#include <fstream>

#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace xydiff {
namespace {

namespace fs = std::filesystem;

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("xydiff_storage_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Dir() const { return dir_.string(); }

  fs::path dir_;
};

TEST_F(StorageTest, DocumentWithXidsRoundTrip) {
  XmlDocument doc = MustParse("<r><a>text</a><b k=\"v\"/></r>");
  doc.AssignInitialXids();
  doc.AllocateXid();  // Advance the allocator past the tree.
  fs::create_directories(dir_);
  const std::string xml = Dir() + "/doc.xml";
  const std::string meta = Dir() + "/doc.meta";
  XY_ASSERT_OK(SaveDocumentWithXids(doc, xml, meta));

  Result<XmlDocument> loaded = LoadDocumentWithXids(xml, meta);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(DocsEqualWithXids(doc, *loaded));
  EXPECT_EQ(loaded->next_xid(), doc.next_xid());
}

TEST_F(StorageTest, DocumentWithNonContiguousXids) {
  // After a few diffs, XIDs have holes; the XID-map must cover that.
  XmlDocument doc = MustParse("<r><a>t</a></r>");
  doc.root()->set_xid(50);
  doc.root()->child(0)->set_xid(7);
  doc.root()->child(0)->child(0)->set_xid(23);
  doc.set_next_xid(51);
  fs::create_directories(dir_);
  XY_ASSERT_OK(
      SaveDocumentWithXids(doc, Dir() + "/d.xml", Dir() + "/d.meta"));
  Result<XmlDocument> loaded =
      LoadDocumentWithXids(Dir() + "/d.xml", Dir() + "/d.meta");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(DocsEqualWithXids(doc, *loaded));
}

TEST_F(StorageTest, IdAttributeDeclarationsSurvive) {
  XmlDocument doc = MustParse(
      "<!DOCTYPE r [<!ATTLIST p id ID #IMPLIED>]><r><p id=\"x\"/></r>");
  doc.AssignInitialXids();
  fs::create_directories(dir_);
  XY_ASSERT_OK(
      SaveDocumentWithXids(doc, Dir() + "/d.xml", Dir() + "/d.meta"));
  Result<XmlDocument> loaded =
      LoadDocumentWithXids(Dir() + "/d.xml", Dir() + "/d.meta");
  ASSERT_TRUE(loaded.ok());
  ASSERT_NE(loaded->dtd().IdAttributeFor("p"), nullptr);
}

TEST_F(StorageTest, RepositoryRoundTrip) {
  Rng rng(5);
  DocGenOptions gen;
  gen.target_bytes = 2048;
  VersionRepository repo(GenerateDocument(&rng, gen));
  for (int v = 0; v < 4; ++v) {
    Result<SimulatedChange> change =
        SimulateChanges(repo.current(), ChangeSimOptions{}, &rng);
    ASSERT_TRUE(change.ok());
    ASSERT_TRUE(repo.Commit(std::move(change->new_version)).ok());
  }

  XY_ASSERT_OK(SaveRepository(repo, Dir()));
  Result<VersionRepository> loaded = LoadRepository(Dir());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->version_count(), repo.version_count());
  EXPECT_TRUE(DocsEqualWithXids(loaded->current(), repo.current()));
  // Every historical version reconstructs identically.
  for (int v = 1; v <= repo.version_count(); ++v) {
    Result<XmlDocument> original = repo.Checkout(v);
    Result<XmlDocument> reloaded = loaded->Checkout(v);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(reloaded.ok()) << "version " << v << ": "
                               << reloaded.status().ToString();
    EXPECT_TRUE(DocsEqualWithXids(*original, *reloaded)) << "version " << v;
  }
}

TEST_F(StorageTest, SaveTruncatesStaleChain) {
  Rng rng(6);
  DocGenOptions gen;
  gen.target_bytes = 1024;
  VersionRepository long_repo(GenerateDocument(&rng, gen));
  for (int v = 0; v < 3; ++v) {
    Result<SimulatedChange> change =
        SimulateChanges(long_repo.current(), ChangeSimOptions{}, &rng);
    ASSERT_TRUE(change.ok());
    ASSERT_TRUE(long_repo.Commit(std::move(change->new_version)).ok());
  }
  XY_ASSERT_OK(SaveRepository(long_repo, Dir()));

  // Overwrite with a single-version repository; stale deltas must go.
  VersionRepository short_repo(GenerateDocument(&rng, gen));
  XY_ASSERT_OK(SaveRepository(short_repo, Dir()));
  Result<VersionRepository> loaded = LoadRepository(Dir());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->version_count(), 1);
}

TEST_F(StorageTest, LoadMissingDirectoryFails) {
  Result<VersionRepository> loaded = LoadRepository(Dir() + "/nonexistent");
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(StorageTest, CorruptMetaRejected) {
  fs::create_directories(dir_);
  XmlDocument doc = MustParse("<r/>");
  doc.AssignInitialXids();
  XY_ASSERT_OK(
      SaveDocumentWithXids(doc, Dir() + "/d.xml", Dir() + "/d.meta"));
  // Clobber the meta file.
  {
    std::ofstream bad(Dir() + "/d.meta", std::ios::trunc);
    bad << "garbage\n";
  }
  Result<XmlDocument> loaded =
      LoadDocumentWithXids(Dir() + "/d.xml", Dir() + "/d.meta");
  EXPECT_FALSE(loaded.ok());
}

// --- recovery from out-of-band damage ---------------------------------
// These tests vandalize stored files directly (not through an Env):
// bit rot and truncation by other processes is exactly the damage the
// MANIFEST checksums exist to catch.

VersionRepository MakeRepo(uint64_t seed, int extra_versions) {
  Rng rng(seed);
  DocGenOptions gen;
  gen.target_bytes = 1024;
  VersionRepository repo(GenerateDocument(&rng, gen));
  for (int v = 0; v < extra_versions; ++v) {
    Result<SimulatedChange> change =
        SimulateChanges(repo.current(), ChangeSimOptions{}, &rng);
    EXPECT_TRUE(change.ok());
    EXPECT_TRUE(repo.Commit(std::move(change->new_version)).ok());
  }
  return repo;
}

void FlipByte(const std::string& path) {
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x40;  // Same size, different CRC.
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST_F(StorageTest, BitFlippedDeltaQuarantinesUnreachableChain) {
  VersionRepository repo = MakeRepo(7, 4);  // 5 versions, 4 deltas.
  XY_ASSERT_OK(SaveRepository(repo, Dir()));
  // delta.000002.xml transforms version 2 -> 3; corrupting it makes
  // versions 1 and 2 unreachable (reconstruction walks backward).
  FlipByte(Dir() + "/delta.000002.xml");

  RecoveryReport report;
  Result<VersionRepository> loaded = LoadRepository(Dir(), nullptr, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(report.clean);
  EXPECT_TRUE(report.manifest_valid);
  EXPECT_EQ(report.dropped_deltas, 2u);
  EXPECT_EQ(report.recovered_version_count, 3);
  ASSERT_EQ(report.quarantined.size(), 2u) << report.ToString();
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / "delta.000001.xml"));
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / "delta.000002.xml"));

  // The surviving suffix reloads byte-identically (XIDs included):
  // loaded version k is original version k + 2.
  EXPECT_EQ(loaded->version_count(), 3);
  for (int v = 1; v <= 3; ++v) {
    Result<XmlDocument> original = repo.Checkout(v + 2);
    Result<XmlDocument> recovered = loaded->Checkout(v);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_TRUE(DocsEqualWithXids(*original, *recovered)) << "version " << v;
  }

  // A reload of the healed store sees the quarantined deltas as simply
  // missing from the manifest-listed set and reports them again — the
  // store is degraded but stable, never a hybrid.
  Result<VersionRepository> again = LoadRepository(Dir());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(DocsEqualWithXids(again->current(), repo.current()));
}

TEST_F(StorageTest, TruncatedDeltaQuarantinesUnreachableChain) {
  VersionRepository repo = MakeRepo(8, 3);  // 4 versions, 3 deltas.
  XY_ASSERT_OK(SaveRepository(repo, Dir()));
  {
    // Keep a syntactically broken prefix, as a torn write would.
    std::ofstream out(Dir() + "/delta.000001.xml",
                      std::ios::binary | std::ios::trunc);
    out << "<delta";
  }

  RecoveryReport report;
  Result<VersionRepository> loaded = LoadRepository(Dir(), nullptr, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(report.clean);
  EXPECT_EQ(report.dropped_deltas, 1u);
  EXPECT_EQ(loaded->version_count(), 3);
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / "delta.000001.xml"));
  EXPECT_TRUE(DocsEqualWithXids(loaded->current(), repo.current()));
  for (int v = 1; v <= 3; ++v) {
    Result<XmlDocument> original = repo.Checkout(v + 1);
    Result<XmlDocument> recovered = loaded->Checkout(v);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(recovered.ok());
    EXPECT_TRUE(DocsEqualWithXids(*original, *recovered)) << "version " << v;
  }
}

TEST_F(StorageTest, BitFlippedCurrentMetaQuarantinedAndReported) {
  VersionRepository repo = MakeRepo(9, 2);
  XY_ASSERT_OK(SaveRepository(repo, Dir()));
  FlipByte(Dir() + "/current.000001.meta");

  RecoveryReport report;
  Result<VersionRepository> loaded = LoadRepository(Dir(), nullptr, &report);
  // No surviving fallback epoch: the newest version is genuinely gone,
  // and the loader must say so rather than fabricate one.
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_FALSE(report.clean);
  EXPECT_TRUE(report.manifest_valid);
  ASSERT_EQ(report.quarantined.size(), 1u) << report.ToString();
  EXPECT_EQ(report.quarantined[0], "current.000001.meta");
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / "current.000001.meta"));
  EXPECT_FALSE(report.notes.empty());
}

TEST_F(StorageTest, TruncatedCurrentXmlQuarantinedAndReported) {
  VersionRepository repo = MakeRepo(10, 1);
  XY_ASSERT_OK(SaveRepository(repo, Dir()));
  XY_ASSERT_OK(SaveRepository(repo, Dir()));  // Second epoch, same chain.
  {
    std::ofstream out(Dir() + "/current.000002.xml",
                      std::ios::binary | std::ios::trunc);
    out << "<r";
  }

  RecoveryReport report;
  Result<VersionRepository> loaded = LoadRepository(Dir(), nullptr, &report);
  // The previous epoch's files were cleaned up after the second commit,
  // so there is no fallback; the report still pins down what was lost.
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  ASSERT_EQ(report.quarantined.size(), 1u) << report.ToString();
  EXPECT_EQ(report.quarantined[0], "current.000002.xml");
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / "current.000002.xml"));
}

TEST_F(StorageTest, CorruptManifestSalvagesNewestEpoch) {
  VersionRepository repo = MakeRepo(11, 2);
  XY_ASSERT_OK(SaveRepository(repo, Dir()));
  FlipByte(Dir() + "/MANIFEST");

  RecoveryReport report;
  Result<VersionRepository> loaded = LoadRepository(Dir(), nullptr, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(report.manifest_valid);
  EXPECT_FALSE(report.clean);
  EXPECT_EQ(loaded->version_count(), repo.version_count());
  EXPECT_TRUE(DocsEqualWithXids(loaded->current(), repo.current()));
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / "MANIFEST"));
}

TEST_F(StorageTest, CleanLoadReportsClean) {
  VersionRepository repo = MakeRepo(12, 2);
  XY_ASSERT_OK(SaveRepository(repo, Dir()));
  RecoveryReport report;
  Result<VersionRepository> loaded = LoadRepository(Dir(), nullptr, &report);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(report.clean);
  EXPECT_TRUE(report.manifest_valid);
  EXPECT_FALSE(report.used_fallback);
  EXPECT_EQ(report.dropped_deltas, 0u);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_EQ(report.recovered_version_count, repo.version_count());
}

TEST_F(StorageTest, MetaTreeSizeMismatchRejected) {
  fs::create_directories(dir_);
  XmlDocument doc = MustParse("<r><a/></r>");
  doc.AssignInitialXids();
  XY_ASSERT_OK(
      SaveDocumentWithXids(doc, Dir() + "/d.xml", Dir() + "/d.meta"));
  // Replace the XML with a differently sized tree.
  {
    std::ofstream bad(Dir() + "/d.xml", std::ios::trunc);
    bad << "<r><a/><b/></r>";
  }
  Result<XmlDocument> loaded =
      LoadDocumentWithXids(Dir() + "/d.xml", Dir() + "/d.meta");
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace xydiff
