#include "xml/builder.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "xml/serializer.h"

namespace xydiff {
namespace {

TEST(BuilderTest, SimpleElement) {
  XmlDocument doc = ElementBuilder("root").BuildDocument();
  EXPECT_EQ(SerializeDocument(doc), "<root/>");
}

TEST(BuilderTest, NestedStructureMatchesParsedEquivalent) {
  XmlDocument built =
      ElementBuilder("Category")
          .Child(ElementBuilder("Title").Text("Digital Cameras"))
          .Child(ElementBuilder("Product")
                     .Attr("status", "new")
                     .Child(ElementBuilder("Price").Text("$799")))
          .BuildDocument();
  XmlDocument parsed = MustParse(
      R"(<Category><Title>Digital Cameras</Title>)"
      R"(<Product status="new"><Price>$799</Price></Product></Category>)");
  EXPECT_TRUE(DocsEqual(built, parsed));
}

TEST(BuilderTest, AttributeOverwrite) {
  XmlDocument doc =
      ElementBuilder("e").Attr("k", "1").Attr("k", "2").BuildDocument();
  EXPECT_EQ(*doc.root()->FindAttribute("k"), "2");
  EXPECT_EQ(doc.root()->attributes().size(), 1u);
}

TEST(BuilderTest, MixedContentOrderPreserved) {
  XmlDocument doc = ElementBuilder("p")
                        .Text("before ")
                        .Child(ElementBuilder("b").Text("bold"))
                        .Text(" after")
                        .BuildDocument();
  ASSERT_EQ(doc.root()->child_count(), 3u);
  EXPECT_TRUE(doc.root()->child(0)->is_text());
  EXPECT_EQ(doc.root()->child(1)->label(), "b");
  EXPECT_EQ(doc.root()->child(2)->text(), " after");
}

TEST(BuilderTest, PrebuiltChildNode) {
  auto leaf = XmlNode::Element("leaf");
  leaf->set_xid(42);
  XmlDocument doc =
      ElementBuilder("root").Child(std::move(leaf)).BuildDocument();
  EXPECT_EQ(doc.root()->child(0)->xid(), 42u);
}

TEST(BuilderTest, BuildSubtreeForInsertion) {
  XmlNodePtr subtree =
      ElementBuilder("item").Child(ElementBuilder("n").Text("x")).Build();
  XmlDocument doc = MustParse("<list/>");
  doc.root()->AppendChild(std::move(subtree));
  EXPECT_EQ(SerializeDocument(doc), "<list><item><n>x</n></item></list>");
}

}  // namespace
}  // namespace xydiff
