#include "delta/lcs.h"

#include <algorithm>
#include <numeric>

#include "gtest/gtest.h"
#include "util/random.h"

namespace xydiff {
namespace {

double SubsequenceWeight(const std::vector<size_t>& kept,
                         const std::vector<double>& weights) {
  double total = 0;
  for (size_t i : kept) total += weights[i];
  return total;
}

bool IsIncreasingSubsequence(const std::vector<size_t>& kept,
                             const std::vector<size_t>& values) {
  for (size_t k = 0; k < kept.size(); ++k) {
    if (k > 0) {
      if (kept[k] <= kept[k - 1]) return false;
      if (values[kept[k]] <= values[kept[k - 1]]) return false;
    }
  }
  return true;
}

/// Exhaustive maximum-weight increasing subsequence for small inputs.
double BruteForceBest(const std::vector<size_t>& values,
                      const std::vector<double>& weights) {
  const size_t n = values.size();
  double best = 0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    double total = 0;
    size_t last = 0;
    bool ok = true;
    bool any = false;
    for (size_t i = 0; i < n; ++i) {
      if (!(mask & (1u << i))) continue;
      if (any && values[i] <= last) {
        ok = false;
        break;
      }
      last = values[i];
      any = true;
      total += weights[i];
    }
    if (ok) best = std::max(best, total);
  }
  return best;
}

TEST(WeightedLisTest, EmptyInput) {
  EXPECT_TRUE(WeightedLis({}, {}).empty());
}

TEST(WeightedLisTest, SingleElement) {
  EXPECT_EQ(WeightedLis({5}, {1.0}), (std::vector<size_t>{0}));
}

TEST(WeightedLisTest, AlreadySorted) {
  const std::vector<size_t> values{0, 1, 2, 3};
  const std::vector<double> weights{1, 1, 1, 1};
  EXPECT_EQ(WeightedLis(values, weights).size(), 4u);
}

TEST(WeightedLisTest, ReversedKeepsHeaviest) {
  const std::vector<size_t> values{3, 2, 1, 0};
  const std::vector<double> weights{1, 1, 5, 1};
  const auto kept = WeightedLis(values, weights);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], 2u);  // The weight-5 element wins.
}

TEST(WeightedLisTest, WeightBeatsLength) {
  // Indices 0,1,2 form a length-3 chain of total weight 3; index 3 alone
  // weighs 10.
  const std::vector<size_t> values{0, 1, 5, 2};
  const std::vector<double> weights{1, 1, 10, 1};
  const auto kept = WeightedLis(values, weights);
  // Best: 0,1,2(value 5) = 12.
  EXPECT_NEAR(SubsequenceWeight(kept, weights), 12.0, 1e-9);
}

TEST(WeightedLisTest, PaperLocalMoveExample) {
  // Figure 3: v1..v6 matched to w positions; optimal keeps v2..v6 and
  // moves v1. Old order v1..v6, new positions: v1->5, v2->0, v3->1,
  // v4->2, v5->3, v6->4 (v1 moved to the end).
  const std::vector<size_t> values{5, 0, 1, 2, 3, 4};
  const std::vector<double> weights(6, 1.0);
  const auto kept = WeightedLis(values, weights);
  EXPECT_EQ(kept, (std::vector<size_t>{1, 2, 3, 4, 5}));
}

TEST(WeightedLisTest, MatchesBruteForceOnRandomInputs) {
  Rng rng(7);
  for (int round = 0; round < 300; ++round) {
    const size_t n = 1 + rng.NextIndex(12);
    std::vector<size_t> values(n);
    std::iota(values.begin(), values.end(), 0);
    // Random permutation.
    for (size_t i = n; i > 1; --i) {
      std::swap(values[i - 1], values[rng.NextIndex(i)]);
    }
    std::vector<double> weights(n);
    for (auto& w : weights) {
      w = 0.25 * static_cast<double>(1 + rng.NextIndex(16));
    }
    const auto kept = WeightedLis(values, weights);
    ASSERT_TRUE(IsIncreasingSubsequence(kept, values));
    EXPECT_NEAR(SubsequenceWeight(kept, weights),
                BruteForceBest(values, weights), 1e-9)
        << "round " << round;
  }
}

TEST(WindowedLisTest, ResultIsValidSubsequence) {
  Rng rng(8);
  for (int round = 0; round < 100; ++round) {
    const size_t n = 1 + rng.NextIndex(200);
    std::vector<size_t> values(n);
    std::iota(values.begin(), values.end(), 0);
    for (size_t i = n; i > 1; --i) {
      std::swap(values[i - 1], values[rng.NextIndex(i)]);
    }
    const std::vector<double> weights(n, 1.0);
    const auto kept = WindowedLis(values, weights, 50);
    ASSERT_TRUE(IsIncreasingSubsequence(kept, values));
    // Never better than exact.
    EXPECT_LE(kept.size(), WeightedLis(values, weights).size());
  }
}

TEST(WindowedLisTest, PaperCuttingExample) {
  // §5.2: cutting (v2,v3,v4) | (v5,v6,...) style lists can miss elements
  // compared to the optimal answer but stays correct. Build a case where
  // the window boundary drops one element.
  // values: block1 = [2 3 9], block2 = [4 5 6] with window 3.
  // Exact LIS keeps 2 3 4 5 6 (drops 9); windowed keeps block1's best
  // (2 3 9) then can only continue above 9 — nothing — so 3 kept.
  const std::vector<size_t> values{2, 3, 9, 4, 5, 6};
  const std::vector<double> weights(6, 1.0);
  EXPECT_EQ(WeightedLis(values, weights).size(), 5u);
  EXPECT_EQ(WindowedLis(values, weights, 3).size(), 3u);
}

TEST(WindowedLisTest, LargeWindowEqualsExact) {
  const std::vector<size_t> values{5, 0, 1, 2, 3, 4};
  const std::vector<double> weights(6, 1.0);
  EXPECT_EQ(WindowedLis(values, weights, 100), WeightedLis(values, weights));
}

TEST(LongestCommonSubsequenceTest, Basic) {
  const std::vector<uint64_t> a{1, 2, 3, 4, 5};
  const std::vector<uint64_t> b{2, 4, 5, 9};
  const auto matches = LongestCommonSubsequence(a, b);
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0], (std::pair<size_t, size_t>{1, 0}));
  EXPECT_EQ(matches[1], (std::pair<size_t, size_t>{3, 1}));
  EXPECT_EQ(matches[2], (std::pair<size_t, size_t>{4, 2}));
}

TEST(LongestCommonSubsequenceTest, EmptyInputs) {
  EXPECT_TRUE(LongestCommonSubsequence({}, {}).empty());
  EXPECT_TRUE(LongestCommonSubsequence({1, 2}, {}).empty());
  EXPECT_TRUE(LongestCommonSubsequence({}, {1, 2}).empty());
}

TEST(LongestCommonSubsequenceTest, Disjoint) {
  EXPECT_TRUE(LongestCommonSubsequence({1, 2}, {3, 4}).empty());
}

TEST(LongestCommonSubsequenceTest, Identical) {
  const std::vector<uint64_t> a{7, 8, 9};
  EXPECT_EQ(LongestCommonSubsequence(a, a).size(), 3u);
}

TEST(LongestCommonSubsequenceTest, WithDuplicates) {
  const std::vector<uint64_t> a{1, 1, 2, 1};
  const std::vector<uint64_t> b{1, 2, 1, 1};
  EXPECT_EQ(LongestCommonSubsequence(a, b).size(), 3u);
}

}  // namespace
}  // namespace xydiff
