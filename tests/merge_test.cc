#include "delta/merge.h"

#include <unordered_set>

#include "core/buld.h"
#include "delta/compose.h"
#include "delta/apply.h"
#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace xydiff {
namespace {

constexpr std::string_view kBase =
    "<doc><intro>hello world</intro>"
    "<section><para>first paragraph text</para></section>"
    "<appendix note=\"v1\"><para>appendix text</para></appendix></doc>";

/// Diffs base against `new_xml`, returning the delta; base gets its
/// first-version XIDs.
Delta DeltaFor(const XmlDocument& base, std::string_view new_xml) {
  XmlDocument old_doc = base.Clone();
  XmlDocument new_doc = MustParse(new_xml);
  Result<Delta> delta = XyDiff(&old_doc, &new_doc);
  EXPECT_TRUE(delta.ok());
  return std::move(delta.value());
}

class MergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = MustParse(kBase);
    base_.AssignInitialXids();
  }
  XmlDocument base_;
};

TEST_F(MergeTest, DisjointEditsMergeCleanly) {
  // Ours edits the intro; theirs edits the appendix paragraph.
  const Delta ours = DeltaFor(
      base_,
      "<doc><intro>hello merged world</intro>"
      "<section><para>first paragraph text</para></section>"
      "<appendix note=\"v1\"><para>appendix text</para></appendix></doc>");
  const Delta theirs = DeltaFor(
      base_,
      "<doc><intro>hello world</intro>"
      "<section><para>first paragraph text</para></section>"
      "<appendix note=\"v1\"><para>rewritten appendix</para></appendix></doc>");

  Result<MergeResult> merged = ThreeWayMerge(base_, ours, theirs);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(merged->clean());
  EXPECT_EQ(merged->theirs_applied, 1u);

  XmlDocument expected = MustParse(
      "<doc><intro>hello merged world</intro>"
      "<section><para>first paragraph text</para></section>"
      "<appendix note=\"v1\"><para>rewritten appendix</para></appendix>"
      "</doc>");
  EXPECT_TRUE(DocsEqual(merged->merged, expected));
}

TEST_F(MergeTest, ConcurrentInsertionsBothSurvive) {
  const Delta ours = DeltaFor(
      base_,
      "<doc><intro>hello world</intro>"
      "<section><para>first paragraph text</para><para>ours added</para>"
      "</section>"
      "<appendix note=\"v1\"><para>appendix text</para></appendix></doc>");
  const Delta theirs = DeltaFor(
      base_,
      "<doc><intro>hello world</intro>"
      "<section><para>theirs added</para><para>first paragraph text</para>"
      "</section>"
      "<appendix note=\"v1\"><para>appendix text</para></appendix></doc>");

  Result<MergeResult> merged = ThreeWayMerge(base_, ours, theirs);
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged->clean());
  // The section ends up with three paragraphs.
  const XmlNode* section = merged->merged.root()->child(1);
  EXPECT_EQ(section->child_count(), 3u);
  // And no duplicate XIDs anywhere.
  std::unordered_set<Xid> seen;
  bool duplicates = false;
  merged->merged.root()->Visit([&](const XmlNode* n) {
    if (!seen.insert(n->xid()).second) duplicates = true;
  });
  EXPECT_FALSE(duplicates) << "theirs' fresh XIDs were not renumbered";
}

TEST_F(MergeTest, UpdateUpdateConflict) {
  const Delta ours = DeltaFor(
      base_,
      "<doc><intro>ours version</intro>"
      "<section><para>first paragraph text</para></section>"
      "<appendix note=\"v1\"><para>appendix text</para></appendix></doc>");
  const Delta theirs = DeltaFor(
      base_,
      "<doc><intro>theirs version</intro>"
      "<section><para>first paragraph text</para></section>"
      "<appendix note=\"v1\"><para>appendix text</para></appendix></doc>");

  Result<MergeResult> merged = ThreeWayMerge(base_, ours, theirs);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->conflicts.size(), 1u);
  EXPECT_EQ(merged->conflicts[0].kind, MergeConflictKind::kUpdateUpdate);
  // Ours wins in the merged document.
  EXPECT_EQ(merged->merged.root()->child(0)->child(0)->text(),
            "ours version");
}

TEST_F(MergeTest, IdenticalEditsDeduplicated) {
  const std::string same =
      "<doc><intro>both changed it the same way</intro>"
      "<section><para>first paragraph text</para></section>"
      "<appendix note=\"v1\"><para>appendix text</para></appendix></doc>";
  const Delta ours = DeltaFor(base_, same);
  const Delta theirs = DeltaFor(base_, same);
  Result<MergeResult> merged = ThreeWayMerge(base_, ours, theirs);
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged->clean());
  EXPECT_EQ(merged->theirs_dropped_duplicates, 1u);
  EXPECT_EQ(merged->theirs_applied, 0u);
}

TEST_F(MergeTest, TouchedDeletedConflict) {
  // Ours deletes the appendix; theirs edits inside it.
  const Delta ours = DeltaFor(
      base_,
      "<doc><intro>hello world</intro>"
      "<section><para>first paragraph text</para></section></doc>");
  const Delta theirs = DeltaFor(
      base_,
      "<doc><intro>hello world</intro>"
      "<section><para>first paragraph text</para></section>"
      "<appendix note=\"v1\"><para>edited appendix</para></appendix></doc>");

  Result<MergeResult> merged = ThreeWayMerge(base_, ours, theirs);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->conflicts.size(), 1u);
  EXPECT_EQ(merged->conflicts[0].kind, MergeConflictKind::kTouchedDeleted);
  // The appendix stays deleted (ours wins).
  EXPECT_EQ(merged->merged.root()->child_count(), 2u);
}

TEST_F(MergeTest, DeleteTouchedConflict) {
  // Ours edits inside the appendix; theirs deletes it.
  const Delta ours = DeltaFor(
      base_,
      "<doc><intro>hello world</intro>"
      "<section><para>first paragraph text</para></section>"
      "<appendix note=\"v2\"><para>appendix text</para></appendix></doc>");
  const Delta theirs = DeltaFor(
      base_,
      "<doc><intro>hello world</intro>"
      "<section><para>first paragraph text</para></section></doc>");

  Result<MergeResult> merged = ThreeWayMerge(base_, ours, theirs);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->conflicts.size(), 1u);
  EXPECT_EQ(merged->conflicts[0].kind, MergeConflictKind::kDeleteTouched);
  // The appendix survives with ours' attribute edit.
  ASSERT_EQ(merged->merged.root()->child_count(), 3u);
  EXPECT_EQ(*merged->merged.root()->child(2)->FindAttribute("note"), "v2");
}

TEST_F(MergeTest, MoveMoveConflict) {
  // Both move the appendix paragraph, to different parents.
  const Delta ours = DeltaFor(
      base_,
      "<doc><intro>hello world</intro>"
      "<section><para>first paragraph text</para>"
      "<para>appendix text</para></section>"
      "<appendix note=\"v1\"/></doc>");
  const Delta theirs = DeltaFor(
      base_,
      "<doc><para>appendix text</para><intro>hello world</intro>"
      "<section><para>first paragraph text</para></section>"
      "<appendix note=\"v1\"/></doc>");

  Result<MergeResult> merged = ThreeWayMerge(base_, ours, theirs);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->conflicts.size(), 1u);
  EXPECT_EQ(merged->conflicts[0].kind, MergeConflictKind::kMoveMove);
}

TEST_F(MergeTest, RandomizedDisjointRegionsMergeClean) {
  // Split a generated document into two halves; each side only edits its
  // half, so every merge must be clean and contain both edit sets.
  Rng rng(55);
  for (int round = 0; round < 5; ++round) {
    DocGenOptions gen;
    gen.target_bytes = 4096;
    XmlDocument base = GenerateDocument(&rng, gen);
    base.AssignInitialXids();
    if (base.root()->child_count() < 2) continue;

    // Build "ours": simulate changes inside the first top-level section
    // only, by splicing a changed clone of that subtree.
    const auto edit_section = [&](size_t index) {
      XmlDocument version = base.Clone();
      XmlDocument section(version.root()->RemoveChild(index));
      section.set_next_xid(base.next_xid());
      Result<SimulatedChange> change =
          SimulateChanges(section, ChangeSimOptions{}, &rng);
      EXPECT_TRUE(change.ok());
      version.root()->InsertChild(index, change->new_version.take_root());
      XmlDocument b = base.Clone();
      Result<Delta> delta = DeltaFromXidCorrespondence(&b, &version);
      EXPECT_TRUE(delta.ok());
      return std::move(delta.value());
    };
    const Delta ours = edit_section(0);
    const Delta theirs = edit_section(base.root()->child_count() - 1);

    Result<MergeResult> merged = ThreeWayMerge(base, ours, theirs);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_TRUE(merged->clean()) << "round " << round;
    // Both sides' changes are present: applying ours and theirs
    // separately then comparing section-wise would be elaborate; at
    // minimum the merged doc differs from base whenever either delta
    // was non-empty.
    if (!ours.empty() || !theirs.empty()) {
      EXPECT_FALSE(merged->merged.root()->DeepEquals(*base.root()));
    }
  }
}

TEST_F(MergeTest, ConflictKindNames) {
  EXPECT_STREQ(MergeConflictKindName(MergeConflictKind::kUpdateUpdate),
               "update/update");
  EXPECT_STREQ(MergeConflictKindName(MergeConflictKind::kDeleteTouched),
               "delete/touched");
}

}  // namespace
}  // namespace xydiff
