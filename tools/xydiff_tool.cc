// xydiff_tool — command-line front end, in the spirit of the utilities
// the original XyDiff distribution shipped ("Xydiff, tools for detecting
// changes in XML documents", reference [8] of the paper).
//
//   xydiff_tool diff OLD.xml NEW.xml [-o DELTA] [--meta M] [--write-meta M2]
//               [--pretty] [--no-moves] [--no-ids] [--window N] [--stats]
//   xydiff_tool patch DOC.xml DELTA.xml [-o OUT] [--meta M] [--reverse]
//               [--write-meta M2]
//   xydiff_tool invert DELTA.xml [-o OUT]
//   xydiff_tool compose BASE.xml D1.xml D2.xml [-o OUT] [--meta M]
//   xydiff_tool stats DELTA.xml
//   xydiff_tool validate DELTA.xml
//   xydiff_tool batch MANIFEST.tsv [-o WAREHOUSE_DIR] [--threads N]
//               [--queue N] [--stats] [--deadline-ms MS]
//               [--max-batch-bytes BYTES]
//   xydiff_tool checkout WAREHOUSE_DIR URL [--version N] [-o OUT] [--stats]
//
// XIDs are persisted in sidecar meta files (--meta / --write-meta, see
// version/storage.h); without one, a document gets first-version postfix
// XIDs, which is reproducible, so `patch` on the same file pair works
// without any sidecars.

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/buld.h"
#include "delta/apply.h"
#include "delta/compose.h"
#include "delta/delta_xml.h"
#include "delta/invert.h"
#include "delta/summary.h"
#include "delta/validate.h"
#include "util/env.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "version/storage.h"
#include "version/warehouse.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xydiff {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: xydiff_tool <diff|patch|invert|compose|stats|validate"
               "|batch|checkout> [args...]\n"
               "run a command without arguments for details; also: explain\n");
  return 2;
}

/// Minimal flag cracker: positionals in order, flags by name.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "-o" || arg == "--meta" || arg == "--write-meta" ||
          arg == "--window" || arg == "--threads" || arg == "--queue" ||
          arg == "--version" || arg == "--deadline-ms" ||
          arg == "--max-batch-bytes") {
        if (i + 1 >= argc) {
          error_ = "flag " + arg + " needs a value";
          return;
        }
        named_[arg] = argv[++i];
      } else if (arg.rfind("--", 0) == 0) {
        named_[arg] = "";
      } else {
        positional_.push_back(arg);
      }
    }
  }

  const std::string& error() const { return error_; }
  const std::vector<std::string>& positional() const { return positional_; }
  bool Has(const std::string& flag) const { return named_.count(flag) != 0; }
  std::optional<std::string> Get(const std::string& flag) const {
    auto it = named_.find(flag);
    if (it == named_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> named_;
  std::string error_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Strict positive-integer flag parsing: "abc" or "0" is a usage
/// error, not a silent clamp to 1.
Result<long> ParsePositive(const std::string& flag,
                           const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (errno != 0 || end == value.c_str() || *end != '\0' || parsed <= 0) {
    return Status::InvalidArgument(flag + " expects a positive integer, got '" +
                                   value + "'");
  }
  return parsed;
}

Status WriteOutput(const std::optional<std::string>& path,
                   const std::string& content) {
  if (!path.has_value()) {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return Status::OK();
  }
  // Plain (non-atomic) write: -o may name a device like /dev/null, which
  // cannot be renamed onto. Repository persistence stays atomic.
  return Env::Default()->WriteFile(*path, content);
}

/// Loads a document; with `meta` its persisted XIDs, else first-version
/// postfix XIDs.
Result<XmlDocument> LoadVersion(const std::string& xml_path,
                                const std::optional<std::string>& meta) {
  if (meta.has_value()) return LoadDocumentWithXids(xml_path, *meta);
  Result<XmlDocument> doc = ParseXmlFile(xml_path);
  if (!doc.ok()) return doc.status();
  doc->AssignInitialXids();
  return doc;
}

Result<Delta> LoadDelta(const std::string& path) {
  Result<std::string> text = Env::Default()->ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseDelta(*text);
}

void PrintDeltaStats(const Delta& delta) {
  std::printf("operations     : %zu\n", delta.operation_count());
  std::printf("  deletes      : %zu\n", delta.deletes().size());
  std::printf("  inserts      : %zu\n", delta.inserts().size());
  std::printf("  moves        : %zu\n", delta.moves().size());
  std::printf("  text updates : %zu\n", delta.updates().size());
  std::printf("  attribute ops: %zu\n", delta.attribute_ops().size());
  std::printf("snapshot nodes : %zu\n", delta.snapshot_node_count());
  std::printf("edit cost      : %zu\n", delta.edit_cost());
  std::printf("xid range      : old next %llu, new next %llu\n",
              static_cast<unsigned long long>(delta.old_next_xid()),
              static_cast<unsigned long long>(delta.new_next_xid()));
}

int CmdDiff(const Args& args) {
  if (args.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: xydiff_tool diff OLD.xml NEW.xml [-o DELTA]"
                 " [--meta M] [--write-meta M2] [--pretty] [--no-moves]"
                 " [--no-ids] [--window N] [--stats]\n");
    return 2;
  }
  Result<XmlDocument> old_doc =
      LoadVersion(args.positional()[0], args.Get("--meta"));
  if (!old_doc.ok()) return Fail(old_doc.status());
  Result<XmlDocument> new_doc = ParseXmlFile(args.positional()[1]);
  if (!new_doc.ok()) return Fail(new_doc.status());

  DiffOptions options;
  if (args.Has("--no-moves")) options.detect_moves = false;
  if (args.Has("--no-ids")) options.use_id_attributes = false;
  if (auto window = args.Get("--window")) {
    options.lops_window = static_cast<size_t>(std::stoul(*window));
  }

  DiffStats stats;
  Result<Delta> delta =
      XyDiff(&old_doc.value(), &new_doc.value(), options, &stats);
  if (!delta.ok()) return Fail(delta.status());

  if (Status s = WriteOutput(args.Get("-o"),
                             SerializeDelta(*delta, args.Has("--pretty")));
      !s.ok()) {
    return Fail(s);
  }
  if (auto meta = args.Get("--write-meta")) {
    // Persist the new version's XIDs so future diffs chain correctly.
    if (Status s = SaveDocumentWithXids(
            *new_doc, args.positional()[1] + ".xy.xml", *meta);
        !s.ok()) {
      return Fail(s);
    }
  }
  if (args.Has("--stats")) {
    std::fprintf(stderr,
                 "nodes %zu -> %zu, matched %zu, diff time %.3f ms\n",
                 stats.nodes_old, stats.nodes_new, stats.matched_nodes,
                 stats.total_seconds() * 1e3);
  }
  return 0;
}

int CmdPatch(const Args& args) {
  if (args.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: xydiff_tool patch DOC.xml DELTA.xml [-o OUT]"
                 " [--meta M] [--reverse] [--write-meta M2]\n");
    return 2;
  }
  Result<XmlDocument> doc =
      LoadVersion(args.positional()[0], args.Get("--meta"));
  if (!doc.ok()) return Fail(doc.status());
  Result<Delta> delta = LoadDelta(args.positional()[1]);
  if (!delta.ok()) return Fail(delta.status());

  const Status applied = args.Has("--reverse")
                             ? ApplyDeltaInverse(*delta, &doc.value())
                             : ApplyDelta(*delta, &doc.value());
  if (!applied.ok()) return Fail(applied);

  SerializeOptions serialize;
  serialize.xml_declaration = true;
  serialize.doctype = true;
  if (Status s = WriteOutput(args.Get("-o"), SerializeDocument(*doc, serialize));
      !s.ok()) {
    return Fail(s);
  }
  if (auto meta = args.Get("--write-meta")) {
    const std::string xml_path =
        args.Get("-o").value_or(args.positional()[0] + ".patched.xml");
    if (Status s = SaveDocumentWithXids(*doc, xml_path, *meta); !s.ok()) {
      return Fail(s);
    }
  }
  return 0;
}

int CmdInvert(const Args& args) {
  if (args.positional().size() != 1) {
    std::fprintf(stderr, "usage: xydiff_tool invert DELTA.xml [-o OUT]\n");
    return 2;
  }
  Result<Delta> delta = LoadDelta(args.positional()[0]);
  if (!delta.ok()) return Fail(delta.status());
  if (Status s =
          WriteOutput(args.Get("-o"), SerializeDelta(InvertDelta(*delta)));
      !s.ok()) {
    return Fail(s);
  }
  return 0;
}

int CmdCompose(const Args& args) {
  if (args.positional().size() != 3) {
    std::fprintf(stderr,
                 "usage: xydiff_tool compose BASE.xml D1.xml D2.xml"
                 " [-o OUT] [--meta M]\n");
    return 2;
  }
  Result<XmlDocument> base =
      LoadVersion(args.positional()[0], args.Get("--meta"));
  if (!base.ok()) return Fail(base.status());
  Result<Delta> d1 = LoadDelta(args.positional()[1]);
  if (!d1.ok()) return Fail(d1.status());
  Result<Delta> d2 = LoadDelta(args.positional()[2]);
  if (!d2.ok()) return Fail(d2.status());
  Result<Delta> composed = ComposeDeltas(*base, *d1, *d2);
  if (!composed.ok()) return Fail(composed.status());
  if (Status s = WriteOutput(args.Get("-o"), SerializeDelta(*composed));
      !s.ok()) {
    return Fail(s);
  }
  return 0;
}

int CmdStats(const Args& args) {
  if (args.positional().size() != 1) {
    std::fprintf(stderr, "usage: xydiff_tool stats DELTA.xml\n");
    return 2;
  }
  Result<Delta> delta = LoadDelta(args.positional()[0]);
  if (!delta.ok()) return Fail(delta.status());
  PrintDeltaStats(*delta);
  return 0;
}

int CmdExplain(const Args& args) {
  if (args.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: xydiff_tool explain OLD.xml DELTA.xml [--meta M]\n");
    return 2;
  }
  Result<XmlDocument> old_doc =
      LoadVersion(args.positional()[0], args.Get("--meta"));
  if (!old_doc.ok()) return Fail(old_doc.status());
  Result<Delta> delta = LoadDelta(args.positional()[1]);
  if (!delta.ok()) return Fail(delta.status());
  // Materialize the new version to resolve target-side paths.
  XmlDocument new_doc = old_doc->Clone();
  if (Status s = ApplyDelta(*delta, &new_doc); !s.ok()) return Fail(s);
  Result<std::string> report = ExplainDelta(*delta, *old_doc, new_doc);
  if (!report.ok()) return Fail(report.status());
  std::fputs(report->c_str(), stdout);
  return 0;
}

/// The parallel warehouse driver: diffs many old/new file pairs through
/// the staged parse → diff → store pipeline (see Warehouse::DiffBatch).
/// The manifest has one `OLD.xml<TAB>NEW.xml[<TAB>URL]` line per
/// document; URL defaults to the old path. With -o the warehouse (delta
/// chains and all) is persisted for later querying.
int CmdBatch(const Args& args) {
  if (args.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: xydiff_tool batch MANIFEST.tsv [-o WAREHOUSE_DIR]"
                 " [--threads N] [--queue N] [--stats] [--fail-fast]\n"
                 "       [--deadline-ms MS] [--max-batch-bytes BYTES]\n"
                 "manifest line: OLD.xml<TAB>NEW.xml[<TAB>URL]\n"
                 "exit codes: 0 ok, 1 slot failed, 2 usage, 3 deadline,\n"
                 "            4 cancelled, 5 shed (budget), 6 quarantined\n");
    return 2;
  }
  Result<std::string> manifest =
      Env::Default()->ReadFile(args.positional()[0]);
  if (!manifest.ok()) return Fail(manifest.status());

  std::vector<Warehouse::DiffJob> olds;
  std::vector<Warehouse::DiffJob> news;
  for (std::string_view line : SplitLines(*manifest)) {
    if (line.empty()) continue;
    const size_t tab1 = line.find('\t');
    if (tab1 == std::string_view::npos) {
      return Fail(Status::InvalidArgument("manifest line without tab: " +
                                          std::string(line)));
    }
    const size_t tab2 = line.find('\t', tab1 + 1);
    const std::string old_path(line.substr(0, tab1));
    const std::string new_path(
        line.substr(tab1 + 1, tab2 == std::string_view::npos
                                  ? std::string_view::npos
                                  : tab2 - tab1 - 1));
    const std::string url(tab2 == std::string_view::npos
                              ? old_path
                              : std::string(line.substr(tab2 + 1)));
    Result<std::string> old_xml = Env::Default()->ReadFile(old_path);
    if (!old_xml.ok()) return Fail(old_xml.status());
    Result<std::string> new_xml = Env::Default()->ReadFile(new_path);
    if (!new_xml.ok()) return Fail(new_xml.status());
    olds.push_back({url, std::move(*old_xml)});
    news.push_back({url, std::move(*new_xml)});
  }

  Warehouse::PipelineOptions pipeline;
  pipeline.threads = ThreadPool::DefaultThreadCount();
  if (auto threads = args.Get("--threads")) {
    Result<long> parsed = ParsePositive("--threads", *threads);
    if (!parsed.ok()) return Fail(parsed.status());
    pipeline.threads = static_cast<int>(std::min<long>(*parsed, 1024));
  }
  if (auto queue = args.Get("--queue")) {
    Result<long> parsed = ParsePositive("--queue", *queue);
    if (!parsed.ok()) return Fail(parsed.status());
    pipeline.queue_capacity = static_cast<size_t>(*parsed);
  }
  pipeline.fail_fast = args.Has("--fail-fast");
  // The deadline context must outlive both DiffBatch calls below; it
  // covers the whole run (old versions + new versions).
  std::optional<Context> deadline_context;
  if (auto deadline = args.Get("--deadline-ms")) {
    Result<long> parsed = ParsePositive("--deadline-ms", *deadline);
    if (!parsed.ok()) return Fail(parsed.status());
    deadline_context = Context::WithTimeout(std::chrono::milliseconds(*parsed));
    pipeline.context = &*deadline_context;
  }
  if (auto budget = args.Get("--max-batch-bytes")) {
    Result<long> parsed = ParsePositive("--max-batch-bytes", *budget);
    if (!parsed.ok()) return Fail(parsed.status());
    pipeline.max_batch_bytes = static_cast<size_t>(*parsed);
  }

  // Per-slot outcomes accumulate here; the tool always prints a summary
  // of every failed slot and exits non-zero if there was any. Overload
  // outcomes (deadline / cancelled / shed / quarantined) are counted
  // separately and map to distinct exit codes.
  std::vector<std::string> failed_slots;
  size_t aborted = 0;
  size_t deadline_slots = 0, cancelled_slots = 0;
  size_t shed_slots = 0, quarantined_slots = 0;
  const std::vector<std::string> urls = [&] {
    std::vector<std::string> out;
    for (const Warehouse::DiffJob& job : news) out.push_back(job.url);
    return out;
  }();
  const auto record = [&](size_t index, const Status& status,
                          const char* pass) {
    if (status.code() == StatusCode::kAborted) {
      ++aborted;
      return;
    }
    const char* category = "failed";
    switch (status.code()) {
      case StatusCode::kDeadlineExceeded:
        ++deadline_slots;
        category = "deadline";
        break;
      case StatusCode::kCancelled:
        ++cancelled_slots;
        category = "cancelled";
        break;
      case StatusCode::kResourceExhausted:
        ++shed_slots;
        category = "shed";
        break;
      case StatusCode::kUnavailable:
        ++quarantined_slots;
        category = "quarantined";
        break;
      default:
        break;
    }
    failed_slots.push_back(urls[index] + " (" + pass + ", " + category +
                           "): " + status.ToString());
  };

  Warehouse warehouse;
  {
    const std::vector<Result<Warehouse::IngestReport>> first =
        warehouse.DiffBatch(std::move(olds), pipeline);
    for (size_t i = 0; i < first.size(); ++i) {
      if (!first[i].ok()) record(i, first[i].status(), "old version");
    }
  }
  PipelineStats stats;
  size_t total_ops = 0, total_delta_bytes = 0;
  const std::vector<Result<Warehouse::IngestReport>> second =
      warehouse.DiffBatch(std::move(news), pipeline, &stats);
  for (size_t i = 0; i < second.size(); ++i) {
    const Result<Warehouse::IngestReport>& r = second[i];
    if (!r.ok()) {
      record(i, r.status(), "new version");
      continue;
    }
    std::printf("%s: v%d, %zu operation(s), %zu delta byte(s)\n",
                r->url.c_str(), r->version, r->operations, r->delta_bytes);
    total_ops += r->operations;
    total_delta_bytes += r->delta_bytes;
  }
  std::printf("batch: %zu document(s), %zu operation(s), %zu delta byte(s),"
              " %zu failure(s)\n",
              warehouse.document_count(), total_ops, total_delta_bytes,
              failed_slots.size());
  if (!failed_slots.empty()) {
    std::fprintf(stderr, "failed slots (%zu):\n", failed_slots.size());
    for (const std::string& slot : failed_slots) {
      std::fprintf(stderr, "  %s\n", slot.c_str());
    }
  }
  if (aborted > 0) {
    std::fprintf(stderr, "%zu slot(s) skipped by --fail-fast\n", aborted);
  }
  const size_t overload_slots =
      deadline_slots + cancelled_slots + shed_slots + quarantined_slots;
  if (overload_slots > 0) {
    std::fprintf(stderr,
                 "overload: %zu deadline, %zu cancelled, %zu shed,"
                 " %zu quarantined\n",
                 deadline_slots, cancelled_slots, shed_slots,
                 quarantined_slots);
  }
  if (args.Has("--stats")) {
    std::fputs(stats.ToString().c_str(), stderr);
  }
  if (auto out = args.Get("-o")) {
    if (Status s = warehouse.Save(*out); !s.ok()) return Fail(s);
    std::printf("warehouse saved to %s\n", out->c_str());
  }
  if (failed_slots.empty()) return 0;
  // Distinct exit codes when every failure shares one overload cause;
  // mixed or intrinsic failures keep the generic code 1.
  if (failed_slots.size() == overload_slots) {
    if (deadline_slots == overload_slots) return 3;
    if (cancelled_slots == overload_slots) return 4;
    if (shed_slots == overload_slots) return 5;
    if (quarantined_slots == overload_slots) return 6;
  }
  return 1;
}

/// Reconstructs one version of one warehouse document from its
/// persisted repository (§2 "Querying the past"): `URL` is looked up in
/// the warehouse manifest written by `batch -o` (a raw subdirectory
/// name is accepted too), the crash-safe store is recovered and loaded,
/// and the requested version (default: newest) is written out.
int CmdCheckout(const Args& args) {
  if (args.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: xydiff_tool checkout WAREHOUSE_DIR URL"
                 " [--version N] [-o OUT] [--stats]\n");
    return 2;
  }
  const std::string& directory = args.positional()[0];
  const std::string& url = args.positional()[1];

  // A crashed batch group commit may have left a journal; roll it
  // forward (or discard a torn one) before trusting any slot.
  if (Status s = RecoverRepositoryBatch(directory); !s.ok()) return Fail(s);

  Result<std::string> manifest =
      Env::Default()->ReadFile(directory + "/manifest.tsv");
  if (!manifest.ok()) return Fail(manifest.status());
  std::string subdirectory;
  for (std::string_view line : SplitLines(*manifest)) {
    const size_t tab = line.find('\t');
    if (tab == std::string_view::npos) continue;
    if (line.substr(tab + 1) == url || line.substr(0, tab) == url) {
      subdirectory = std::string(line.substr(0, tab));
      break;
    }
  }
  if (subdirectory.empty()) {
    return Fail(Status::NotFound("no document '" + url +
                                 "' in warehouse manifest " + directory +
                                 "/manifest.tsv"));
  }

  RecoveryReport report;
  Result<VersionRepository> repo =
      LoadRepository(directory + "/" + subdirectory, nullptr, &report);
  if (!repo.ok()) return Fail(repo.status());
  if (!report.clean) {
    std::fprintf(stderr, "recovery: %s\n", report.ToString().c_str());
  }

  int version = repo->current_version();
  if (auto flag = args.Get("--version")) {
    Result<long> parsed = ParsePositive("--version", *flag);
    if (!parsed.ok()) return Fail(parsed.status());
    version = static_cast<int>(std::min<long>(*parsed, INT_MAX));
  }
  CheckoutStats stats;
  Result<XmlDocument> doc = repo->Checkout(version, &stats);
  if (!doc.ok()) return Fail(doc.status());

  SerializeOptions serialize;
  serialize.xml_declaration = true;
  serialize.doctype = true;
  if (Status s =
          WriteOutput(args.Get("-o"), SerializeDocument(*doc, serialize));
      !s.ok()) {
    return Fail(s);
  }
  if (args.Has("--stats")) {
    std::fprintf(stderr,
                 "checkout: version %d of %d, %zu delta application(s),"
                 " %s path\n",
                 version, repo->current_version(), stats.applications,
                 stats.forward ? "forward skip" : "backward replay");
  }
  return 0;
}

int CmdValidate(const Args& args) {
  if (args.positional().size() != 1) {
    std::fprintf(stderr, "usage: xydiff_tool validate DELTA.xml\n");
    return 2;
  }
  Result<Delta> delta = LoadDelta(args.positional()[0]);
  if (!delta.ok()) return Fail(delta.status());
  if (Status s = ValidateDelta(*delta); !s.ok()) return Fail(s);
  std::printf("ok: %zu operation(s)\n", delta->operation_count());
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Args args(argc, argv);
  if (!args.error().empty()) {
    std::fprintf(stderr, "error: %s\n", args.error().c_str());
    return 2;
  }
  if (command == "diff") return CmdDiff(args);
  if (command == "patch") return CmdPatch(args);
  if (command == "invert") return CmdInvert(args);
  if (command == "compose") return CmdCompose(args);
  if (command == "stats") return CmdStats(args);
  if (command == "validate") return CmdValidate(args);
  if (command == "explain") return CmdExplain(args);
  if (command == "batch") return CmdBatch(args);
  if (command == "checkout") return CmdCheckout(args);
  return Usage();
}

}  // namespace
}  // namespace xydiff

int main(int argc, char** argv) { return xydiff::Run(argc, argv); }
