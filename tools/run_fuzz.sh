#!/bin/sh
# Long-running fuzzing campaign driver. The ctest `fuzz_smoke` entry is
# the bounded tier-1 pass; this script is the unbounded (or
# budget-bounded) version for soak runs, with the scratch/corpus hygiene
# the C++ side deliberately does not own: the Env abstraction has no
# recursive directory removal, so the shell creates and clears the
# scratch tree around each campaign.
#
# Usage:
#   tools/run_fuzz.sh                       # one pass, default budget
#   tools/run_fuzz.sh --minutes 30          # keep cycling for 30 minutes
#   tools/run_fuzz.sh --trials 500          # trials per profile per cycle
#   tools/run_fuzz.sh --build build-sanitize  # fuzz the sanitizer build
#   tools/run_fuzz.sh -- --profiles move-storm,hostile-entity
#
# Everything after `--` is passed straight to fuzz_driver. Failing
# inputs and their repro lines accumulate under the corpus directory
# (never cleared by this script); each cycle advances the seed window so
# a soak run visits fresh trials, while any single failure still replays
# from its printed (seed, profile, size) line.
set -eu

cd "$(dirname "$0")/.."

BUILD_DIR=build
MINUTES=0
TRIALS=100
while [ $# -gt 0 ]; do
  case "$1" in
    --build) BUILD_DIR=$2; shift 2 ;;
    --minutes) MINUTES=$2; shift 2 ;;
    --trials) TRIALS=$2; shift 2 ;;
    --) shift; break ;;
    *) echo "unknown option: $1 (use --build/--minutes/--trials [-- driver args])" >&2
       exit 2 ;;
  esac
done

DRIVER="$BUILD_DIR/tools/fuzz_driver"
if [ ! -x "$DRIVER" ]; then
  cmake --build "$BUILD_DIR" --target fuzz_driver -j "$(nproc)"
fi

SCRATCH="$BUILD_DIR/fuzz_scratch"
CORPUS="$BUILD_DIR/fuzz_corpus"
deadline=$(( $(date +%s) + MINUTES * 60 ))

cycle=0
seed_start=1
while :; do
  cycle=$((cycle + 1))
  # Fresh scratch per cycle: crash trials re-use per-seed directories,
  # and a clean tree keeps "leftover state" out of the hybrid-state
  # verdicts entirely.
  rm -rf "$SCRATCH"
  mkdir -p "$SCRATCH"

  echo "== fuzz cycle $cycle (seeds from $seed_start) =="
  "$DRIVER" --trials "$TRIALS" --seed-start "$seed_start" \
    --scratch "$SCRATCH" --corpus "$CORPUS" "$@" || {
      echo "fuzz_driver found failures; inputs persisted under $CORPUS" >&2
      exit 1
    }

  seed_start=$((seed_start + TRIALS))
  [ "$MINUTES" -gt 0 ] && [ "$(date +%s)" -lt "$deadline" ] || break
done

rm -rf "$SCRATCH"
echo "fuzz: $cycle cycle(s) clean; corpus (failures only) at $CORPUS"
