#!/usr/bin/env python3
"""xylint — the xydiff project linter.

Enforces repository invariants the compiler cannot (see DESIGN.md §3.11):

  new-delete          No raw `new` / `delete` outside util/arena — node and
                      string memory is arena- or smart-pointer-owned.
  assert-side-effect  `assert(...)` must not mutate state: asserts vanish
                      in NDEBUG builds, taking the side effect with them.
  mutex-naming        Mutex-typed members end in `mutex` / `mutex_`, so
                      XY_GUARDED_BY annotations read unambiguously.
  umbrella-include    src/xydiff.h (the public surface) only re-exports
                      headers that exist, each marked `IWYU pragma: export`,
                      in sorted order.
  naked-thread        No `std::thread` outside util/thread_pool.* — all
                      parallelism goes through ThreadPool so Wait()/join
                      discipline and the capability annotations apply.
  void-discard        A `(void)` cast (usually a deliberately dropped
                      [[nodiscard]] Status) needs a justification comment
                      on the same or one of the two preceding lines.
  raw-io              No `std::ofstream`/`std::ifstream`/`std::fstream` and
                      no mutating `std::filesystem` call in src/ or tools/
                      outside src/util/env.cc — all product file I/O goes
                      through the Env (util/env.h), so fault injection and
                      the crash-safety protocol see every operation. Tests
                      are exempt: they simulate *out-of-band* damage (bit
                      flips, truncation) that by definition bypasses Env.
  nondet-seed         No nondeterministic RNG seeding: `std::random_device`,
                      `srand`/`rand`, or seeding an engine from the clock.
                      Every randomized test and fuzz trial must replay from
                      a logged integer seed (util/random.h Rng), so a
                      failure's (seed, profile, size) line is the whole
                      reproducer. Applies to src/, tools/ AND tests/.
                      src/fuzz/ alone is exempt: a campaign may draw its
                      starting seed from the environment, provided every
                      trial seed is derived from it and logged.
  naked-sleep         No `sleep_for`/`sleep_until`/`usleep`/`nanosleep` in
                      src/ or tools/ outside util/retry.{h,cc} — every
                      product-code wait goes through SleepFor (util/retry.h)
                      so backoff stays deadline-aware and the `naked-sleep`
                      grep finds every place time is burned. Tests are
                      exempt: they orchestrate real time on purpose.

  allow-unjustified   Every xylint escape carries its reason inline. A bare
                      `allow(<rule>)` suppresses nothing and is itself a
                      finding; placeholder reasons (TODO/FIXME/short) do
                      not count.

Zero dependencies (stdlib only). Exit 0 = clean, 1 = findings, 2 = usage.
Suppress a single line with `// xylint: allow(<rule>): <why>` on that
line — the trailing justification is mandatory.
"""

import argparse
import os
import re
import sys

RULES = (
    "new-delete",
    "assert-side-effect",
    "mutex-naming",
    "umbrella-include",
    "naked-thread",
    "void-discard",
    "raw-io",
    "nondet-seed",
    "naked-sleep",
    "allow-unjustified",
)

ALLOW_RE = re.compile(r"//\s*xylint:\s*allow\(([a-z-]+)\)(?::\s*(\S.*))?")

# Mirrors the xyverify baseline policy: an escape's reason must be a
# real sentence, not a placeholder.
_PLACEHOLDER_JUSTIFICATIONS = ("todo", "fixme", "unjustified", "xxx")
_MIN_JUSTIFICATION = 15  # characters; shorter is not an explanation


def real_justification(text):
    if text is None:
        return False
    t = text.strip()
    return (len(t) >= _MIN_JUSTIFICATION and
            not t.lower().startswith(_PLACEHOLDER_JUSTIFICATIONS))


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving line structure.

    Keeps column positions stable (every stripped character becomes a
    space, newlines survive) so findings point at real locations.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else "\n")
        i += 1
    return "".join(out)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def allowed(raw_lines, lineno, rule):
    m = ALLOW_RE.search(raw_lines[lineno - 1])
    return (m is not None and m.group(1) == rule and
            real_justification(m.group(2)))


def extract_call(code, start):
    """Returns the balanced (...) argument text starting at `start` ('(')."""
    depth = 0
    for i in range(start, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return code[start + 1:i]
    return code[start + 1:]


NEW_RE = re.compile(r"\bnew\b(?!\s*\()")  # `new (ptr) T` placement is also raw
DELETE_RE = re.compile(r"\bdelete\b(?!\s*\[?\]?\s*;?\s*$)")
RAW_NEW_RE = re.compile(r"\bnew\b")
RAW_DELETE_RE = re.compile(r"(?<!=\s)\bdelete\b")
ASSIGN_RE = re.compile(r"(?<![=!<>+\-*/%&|^])=(?![=])")
MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:xydiff::)?"
    r"(?:Mutex|SharedMutex|std::mutex|std::shared_mutex|std::recursive_mutex|"
    r"std::timed_mutex)\s+([A-Za-z_]\w*)\s*(?:;|=|\{)"
)
THREAD_RE = re.compile(r"std::thread\b(?!\s*::)")
STREAM_RE = re.compile(r"std::[oi]?fstream\b")
FS_MUTATION_RE = re.compile(
    r"(?:std::filesystem|fs)::"
    r"(?:create_director(?:y|ies)|remove(?:_all)?|rename|copy(?:_file)?|"
    r"resize_file|permissions|last_write_time)\s*\("
)
VOID_CAST_RE = re.compile(r"\(void\)\s*[A-Za-z_(]")
NAKED_SLEEP_RE = re.compile(
    r"\bsleep_for\s*\(|\bsleep_until\s*\(|\busleep\s*\(|\bnanosleep\s*\(")
NONDET_SEED_RE = re.compile(
    r"std::random_device\b|\bsrand\s*\(|\brand\s*\(\s*\)|"
    # An Rng / <random> engine constructed or re-seeded from the clock
    # ("Rng r(...now())", "mt19937 g{time(0)}", "g.seed(time(0))", ...).
    r"(?:\bRng\b|\bmt19937(?:_64)?\b|\bdefault_random_engine\b|"
    r"\bminstd_rand0?\b|\.seed)[\w\s]*[({][^;)}]*(?:\btime\s*\(|::now\s*\()"
)
INCLUDE_RE = re.compile(r'^#include\s+"([^"]+)"(.*)$')


def lint_file(path, rel, src_root, findings):
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.splitlines() or [""]
    code = strip_comments_and_strings(text)
    code_lines = code.splitlines() or [""]

    in_src = rel.startswith("src/")
    in_tools = rel.startswith("tools/")
    is_arena = rel in ("src/util/arena.h", "src/util/arena.cc")
    is_pool = rel in ("src/util/thread_pool.h", "src/util/thread_pool.cc")
    is_env = rel == "src/util/env.cc"
    is_retry = rel in ("src/util/retry.h", "src/util/retry.cc")
    in_fuzz = rel.startswith("src/fuzz/")

    for lineno, line in enumerate(code_lines, start=1):
        # allow-unjustified: a bare escape suppresses nothing (the rule it
        # names still fires above) and is reported in its own right, so
        # the fix is always "write the reason", never "drop the colon".
        m = ALLOW_RE.search(raw_lines[lineno - 1])
        if m and not real_justification(m.group(2)):
            findings.append(Finding(
                rel, lineno, "allow-unjustified",
                "xylint escape needs a trailing justification: "
                '"// xylint: allow({}): <why>"'.format(m.group(1))))

        # new-delete: arena or smart pointers own everything else.
        if (in_src or in_tools) and not is_arena:
            # `= delete` (deleted member) and `delete[]`-free code only;
            # any other `new` / `delete` token is a raw allocation.
            stripped = re.sub(r"=\s*delete\b", "", line)
            if RAW_NEW_RE.search(line) or RAW_DELETE_RE.search(stripped):
                if not allowed(raw_lines, lineno, "new-delete"):
                    findings.append(Finding(
                        rel, lineno, "new-delete",
                        "raw new/delete outside util/arena — use the arena "
                        "or a smart pointer"))

        # assert-side-effect
        for m in re.finditer(r"\bassert\s*\(", line):
            args = extract_call(line, m.end() - 1)
            if "++" in args or "--" in args or ASSIGN_RE.search(args):
                if not allowed(raw_lines, lineno, "assert-side-effect"):
                    findings.append(Finding(
                        rel, lineno, "assert-side-effect",
                        "assert() argument mutates state; NDEBUG builds "
                        "drop the whole expression"))

        # mutex-naming (members and locals alike: the guarded_by text
        # quotes the name, so the convention is global).
        if in_src:
            m = MUTEX_DECL_RE.match(line)
            if m and not m.group(1).endswith(("mutex", "mutex_")):
                if not allowed(raw_lines, lineno, "mutex-naming"):
                    findings.append(Finding(
                        rel, lineno, "mutex-naming",
                        f"mutex '{m.group(1)}' must be named *mutex or "
                        "*mutex_"))

        # naked-thread
        if (in_src or in_tools) and not is_pool:
            if THREAD_RE.search(line):
                if not allowed(raw_lines, lineno, "naked-thread"):
                    findings.append(Finding(
                        rel, lineno, "naked-thread",
                        "std::thread outside util/thread_pool — submit to "
                        "ThreadPool instead"))

        # raw-io: product code reads and writes only through the Env.
        if (in_src or in_tools) and not is_env:
            if STREAM_RE.search(line) or FS_MUTATION_RE.search(line):
                if not allowed(raw_lines, lineno, "raw-io"):
                    findings.append(Finding(
                        rel, lineno, "raw-io",
                        "raw file I/O outside util/env.cc — route it "
                        "through Env (util/env.h) so fault injection and "
                        "crash-safety cover it"))

        # naked-sleep: product-code waits go through SleepFor so backoff
        # stays deadline-aware (util/retry.h).
        if (in_src or in_tools) and not is_retry:
            if NAKED_SLEEP_RE.search(line):
                if not allowed(raw_lines, lineno, "naked-sleep"):
                    findings.append(Finding(
                        rel, lineno, "naked-sleep",
                        "direct sleep outside util/retry — call SleepFor "
                        "(util/retry.h) so waits stay deadline-aware and "
                        "greppable"))

        # nondet-seed: randomness replays from logged integer seeds.
        if not in_fuzz:
            if NONDET_SEED_RE.search(line):
                if not allowed(raw_lines, lineno, "nondet-seed"):
                    findings.append(Finding(
                        rel, lineno, "nondet-seed",
                        "nondeterministic RNG seeding (random_device / "
                        "rand / clock seed) — derive every seed from a "
                        "logged integer so failures replay"))

        # void-discard: require a nearby justification comment.
        if VOID_CAST_RE.search(line):
            window = raw_lines[max(0, lineno - 3):lineno]
            if not any("//" in w for w in window):
                if not allowed(raw_lines, lineno, "void-discard"):
                    findings.append(Finding(
                        rel, lineno, "void-discard",
                        "(void) discard needs a one-line justification "
                        "comment on this or the two preceding lines"))

    # umbrella-include: only for the public surface header.
    if rel == "src/xydiff.h":
        exported = []
        for lineno, line in enumerate(raw_lines, start=1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            header, tail = m.group(1), m.group(2)
            if not os.path.isfile(os.path.join(src_root, header)):
                findings.append(Finding(
                    rel, lineno, "umbrella-include",
                    f'"{header}" does not exist under src/'))
            if "IWYU pragma: export" not in tail:
                findings.append(Finding(
                    rel, lineno, "umbrella-include",
                    f'"{header}" must be marked "// IWYU pragma: export" — '
                    "the umbrella header only re-exports"))
            exported.append((lineno, header))
        headers = [h for _, h in exported]
        if headers != sorted(headers):
            findings.append(Finding(
                rel, exported[0][0] if exported else 1, "umbrella-include",
                "exported includes must be alphabetically sorted"))


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo", default=None,
                        help="repository root (default: xylint.py/..)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: src/ tools/ tests/)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    repo = os.path.abspath(
        args.repo or os.path.join(os.path.dirname(__file__), ".."))
    src_root = os.path.join(repo, "src")

    targets = []
    if args.paths:
        targets = [os.path.abspath(p) for p in args.paths]
    else:
        for top in ("src", "tools", "tests"):
            for dirpath, _, names in os.walk(os.path.join(repo, top)):
                for name in sorted(names):
                    if name.endswith((".h", ".cc")):
                        targets.append(os.path.join(dirpath, name))

    findings = []
    for path in sorted(targets):
        rel = os.path.relpath(path, repo).replace(os.sep, "/")
        lint_file(path, rel, src_root, findings)

    for f in findings:
        print(f)
    if findings:
        print(f"xylint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"xylint: {len(targets)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
