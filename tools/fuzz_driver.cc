// fuzz_driver — command-line front end of the grammar-driven
// differential fuzzer (src/fuzz/). Generates adversarial documents,
// judges every trial with the oracle library (BULD vs the baselines,
// the delta-algebra laws, codec and checkout agreement), interleaves
// crashes into the batched store protocols, and exits non-zero on any
// divergence or hybrid state.
//
//   fuzz_driver [--profiles a,b,c] [--trials N] [--size BYTES]
//               [--seed-start S] [--scratch DIR] [--corpus DIR]
//               [--time-budget-ms MS] [--no-crash] [--no-shrink] [--list]
//   fuzz_driver --repro PROFILE SEED SIZE
//
// Every failure is reported as a (seed, profile, size) triple that
// replays it exactly (--repro); the shrinker appends the minimized
// spec. Seeds are deterministic: there is no wall-clock or
// /dev/urandom anywhere in a trial, so two runs with the same flags
// are byte-identical. tools/run_fuzz.sh wraps this binary for longer
// campaigns and owns scratch-directory hygiene (Env has no recursive
// remove by design).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fuzz/fuzz.h"
#include "fuzz/grammar.h"
#include "fuzz/oracles.h"

namespace xydiff {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: fuzz_driver [--profiles a,b,c] [--trials N] [--size BYTES]\n"
      "                   [--seed-start S] [--scratch DIR] [--corpus DIR]\n"
      "                   [--time-budget-ms MS] [--no-crash] [--no-shrink]\n"
      "                   [--list]\n"
      "       fuzz_driver --repro PROFILE SEED SIZE\n");
  return 2;
}

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int ListProfiles() {
  for (const FuzzProfile& profile : FuzzProfiles()) {
    std::printf("%-24s %s  (%s)\n", profile.name.c_str(),
                profile.kind == FuzzProfileKind::kTreePair ? "tree" : "raw ",
                profile.description.c_str());
  }
  return 0;
}

int Reproduce(const std::string& profile, uint64_t seed, size_t size) {
  const OracleReport report = ReproduceTrial(profile, seed, size);
  std::printf("repro seed=%llu profile=%s size=%zu: %s\n",
              static_cast<unsigned long long>(seed), profile.c_str(), size,
              report.ToString().c_str());
  return report.ok() ? 0 : 1;
}

int Run(int argc, char** argv) {
  FuzzOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") return ListProfiles();
    if (arg == "--repro") {
      if (i + 3 >= argc) return Usage();
      const std::string profile = argv[i + 1];
      const uint64_t seed = std::strtoull(argv[i + 2], nullptr, 10);
      const size_t size = std::strtoull(argv[i + 3], nullptr, 10);
      return Reproduce(profile, seed, size);
    }
    const char* value = nullptr;
    if (arg == "--profiles" && (value = next())) {
      options.profiles = SplitCommas(value);
    } else if (arg == "--trials" && (value = next())) {
      options.trials_per_profile = std::strtoull(value, nullptr, 10);
    } else if (arg == "--size" && (value = next())) {
      options.size = std::strtoull(value, nullptr, 10);
    } else if (arg == "--seed-start" && (value = next())) {
      options.seed_start = std::strtoull(value, nullptr, 10);
    } else if (arg == "--scratch" && (value = next())) {
      options.scratch_directory = value;
    } else if (arg == "--corpus" && (value = next())) {
      options.corpus_directory = value;
    } else if (arg == "--time-budget-ms" && (value = next())) {
      options.time_budget_ms = std::strtoll(value, nullptr, 10);
    } else if (arg == "--crash-trials" && (value = next())) {
      options.crash_trials = std::strtoull(value, nullptr, 10);
    } else if (arg == "--no-crash") {
      options.crash_interleaving = false;
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else {
      std::fprintf(stderr, "unknown or incomplete argument: %s\n",
                   arg.c_str());
      return Usage();
    }
  }
  if (options.crash_interleaving && options.scratch_directory.empty()) {
    // Crash interleaving needs disk; default it off rather than fail so
    // `fuzz_driver` with no flags still runs the oracle campaign.
    options.crash_interleaving = false;
    std::fprintf(stderr,
                 "note: no --scratch directory, crash interleaving off\n");
  }

  const FuzzSummary summary = RunFuzz(options);
  std::fputs(summary.ToString().c_str(), stdout);
  return summary.ok() ? 0 : 1;
}

}  // namespace
}  // namespace xydiff

int main(int argc, char** argv) { return xydiff::Run(argc, argv); }
