#!/bin/sh
# Builds the test suite under ASan+UBSan and runs it. The arena DOM makes
# object lifetimes a program invariant rather than a per-node property,
# so the sanitizers are the regression net for the ownership rules
# documented in DESIGN.md ("Memory layout and arenas").
#
# Usage: tools/run_sanitized_tests.sh [builddir]
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DXYDIFF_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
