#!/bin/sh
# Static-analysis driver for the xydiff tree.
#
#   tools/run_static_analysis.sh          # full pass: xylint + clang-tidy
#                                         # + the `analyze` preset build
#                                         # (-Werror, -Wthread-safety on
#                                         # Clang) + its ctest suite
#   tools/run_static_analysis.sh --ctest  # fast pass for tier-1 ctest:
#                                         # xylint + clang-tidy only (no
#                                         # recursive build-inside-build)
#
# Tools that are not on the box are skipped with a notice, never failed:
# the container bakes in one toolchain, and the analysis must degrade
# gracefully (clang-tidy and Clang's -Wthread-safety are extra teeth
# where present, not a hard dependency).

set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo"

ctest_mode=0
[ "${1:-}" = "--ctest" ] && ctest_mode=1

fail=0

echo "== xylint =="
if command -v python3 >/dev/null 2>&1; then
  python3 tools/xylint.py || fail=1
else
  echo "SKIP: python3 not found"
fi

echo "== clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1 && [ -f build/compile_commands.json ]
then
  # Project sources only; tests/bench inherit the idiom from src.
  find src tools -name '*.cc' | while read -r f; do
    clang-tidy --quiet -p build "$f" || exit 1
  done || fail=1
else
  echo "SKIP: clang-tidy or build/compile_commands.json not found"
fi

if [ "$ctest_mode" -eq 0 ]; then
  echo "== analyze build (-Werror, -Wthread-safety under Clang) =="
  cmake --preset analyze >/dev/null
  cmake --build --preset analyze -j "$(nproc 2>/dev/null || echo 4)" || fail=1
  echo "== analyze ctest (compile_fail negatives + full suite) =="
  ctest --preset analyze || fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "run_static_analysis: FAILED"
  exit 1
fi
echo "run_static_analysis: OK"
