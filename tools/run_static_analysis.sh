#!/bin/sh
# Static-analysis driver for the xydiff tree.
#
#   tools/run_static_analysis.sh          # full pass: xylint + clang-tidy
#                                         # + xyverify + the `analyze`
#                                         # preset build (-Werror,
#                                         # -Wthread-safety on Clang,
#                                         # -fanalyzer on GCC) + its
#                                         # ctest suite
#   tools/run_static_analysis.sh --ctest  # fast pass for tier-1 ctest:
#                                         # xylint + clang-tidy + xyverify
#                                         # (no recursive
#                                         # build-inside-build)
#
# xyverify options (forwarded to tools/xyverify):
#   --json              emit SARIF JSON from the xyverify stage
#   --baseline FILE     use FILE instead of tools/xyverify_baseline.json
#   --update-baseline   rewrite the baseline to cover current findings
#                       (new entries are UNJUSTIFIED and still fail until
#                       a human writes real justifications)
#
# Tools that are not on the box are skipped with a notice, never failed:
# the container bakes in one toolchain, and the analysis must degrade
# gracefully (clang-tidy and Clang's -Wthread-safety are extra teeth
# where present, not a hard dependency).

set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo"

ctest_mode=0
xyverify_args=""
while [ "$#" -gt 0 ]; do
  case "$1" in
    --ctest) ctest_mode=1 ;;
    --json) xyverify_args="$xyverify_args --json" ;;
    --update-baseline) xyverify_args="$xyverify_args --update-baseline" ;;
    --baseline)
      shift
      xyverify_args="$xyverify_args --baseline $1" ;;
    *)
      echo "run_static_analysis: unknown option: $1" >&2
      exit 2 ;;
  esac
  shift
done

fail=0

echo "== xylint =="
if command -v python3 >/dev/null 2>&1; then
  python3 tools/xylint.py || fail=1
else
  echo "SKIP: python3 not found"
fi

echo "== clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1 && [ -f build/compile_commands.json ]
then
  # Project sources only; tests/bench inherit the idiom from src.
  find src tools -name '*.cc' | while read -r f; do
    clang-tidy --quiet -p build "$f" || exit 1
  done || fail=1
else
  echo "SKIP: clang-tidy or build/compile_commands.json not found"
fi

echo "== xyverify (layering, lock order, arena escape) =="
if command -v python3 >/dev/null 2>&1; then
  # shellcheck disable=SC2086  # word-splitting the flag list is intended
  python3 -m tools.xyverify --stats $xyverify_args || fail=1
else
  echo "SKIP: python3 not found"
fi

if [ "$ctest_mode" -eq 0 ]; then
  echo "== analyze build (-Werror; -Wthread-safety under Clang, -fanalyzer under GCC) =="
  cmake --preset analyze >/dev/null
  cmake --build --preset analyze -j "$(nproc 2>/dev/null || echo 4)" || fail=1
  echo "== analyze ctest (compile_fail negatives + full suite) =="
  ctest --preset analyze || fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "run_static_analysis: FAILED"
  exit 1
fi
echo "run_static_analysis: OK"
