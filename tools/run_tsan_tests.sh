#!/bin/sh
# Builds the concurrency-relevant tests under ThreadSanitizer and runs
# them. TSan checks every memory access against the happens-before
# graph, so it exercises the pipeline's locking discipline (sharded
# document map, per-document mutexes, atomic XID allocation, bounded
# queues) far beyond what an assertion can. The filter keeps the run to
# the tests that actually spawn threads — the single-threaded suite adds
# nothing under TSan and roughly 10x runtime.
#
# Usage: tools/run_tsan_tests.sh [builddir]
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DXYDIFF_TSAN=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  -R 'thread_pool|parallel_pipeline|warehouse|roundtrip_property|pipeline|storage|fuzz|overload'
