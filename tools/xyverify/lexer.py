"""A small C++ lexer: source text -> token stream with line numbers.

This is deliberately NOT a preprocessor or a parser.  It produces exactly
what the rule passes need: identifiers, punctuation, and literals with
stable line numbers, with comments and the *contents* of string/char
literals stripped (a string literal becomes one STRING token so grammar
shapes like `XY_ARENA_BOUND("owner")` survive).

Raw strings, line continuations, and digraphs are handled; preprocessor
directives are kept as single DIRECTIVE tokens (the include scanner wants
them, everything else skips them).
"""

import re
from collections import namedtuple

Token = namedtuple("Token", ["kind", "text", "line"])

# kinds: ident, number, string, char, punct, directive

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUMBER_RE = re.compile(r"(?:0[xXbB][0-9a-fA-F']+|[0-9][0-9a-fA-F'.eEpPxXuUlLzZ+-]*)")
# Longest first so >>= beats >> beats >.
_PUNCTS = (
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", "##",
)


def lex(text):
    """Returns the list of Tokens for `text`."""
    tokens = []
    i, n = 0, len(text)
    line = 1
    at_line_start = True
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            at_line_start = True
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "\\" and i + 1 < n and text[i + 1] == "\n":
            line += 1
            i += 2
            continue
        nxt = text[i + 1] if i + 1 < n else ""
        # Comments.
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                if text[i] == "\n":
                    line += 1
                i += 1
            i += 2
            continue
        # Preprocessor directive: one token up to the (unescaped) newline.
        if c == "#" and at_line_start:
            start, start_line = i, line
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    line += 1
                    i += 2
                    continue
                if text[i] == "\n":
                    break
                if text[i] == "/" and i + 1 < n and text[i + 1] == "/":
                    break  # Trailing comment does not belong to the directive.
                i += 1
            tokens.append(Token("directive", text[start:i], start_line))
            at_line_start = False
            continue
        at_line_start = False
        # Raw string literal.
        m = re.match(r'(?:u8|[uUL])?R"([^ ()\\\t\n]*)\(', text[i:])
        if m:
            terminator = ")" + m.group(1) + '"'
            end = text.find(terminator, i + m.end())
            end = n if end == -1 else end + len(terminator)
            line += text.count("\n", i, end)
            tokens.append(Token("string", '""', line))
            i = end
            continue
        # String / char literal (contents dropped, escapes honoured).
        if c == '"' or (c == "'" and _IDENT_RE.match(text[i - 1:i]) is None):
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                elif text[j] == "\n":
                    line += 1
                j += 1
            tokens.append(Token("string" if quote == '"' else "char",
                                '""' if quote == '"' else "''", line))
            i = j + 1
            continue
        # Identifier (possibly a literal prefix like u8"...").
        m = _IDENT_RE.match(text, i)
        if m:
            tokens.append(Token("ident", m.group(0), line))
            i = m.end()
            continue
        if c.isdigit():
            m = _NUMBER_RE.match(text, i)
            tokens.append(Token("number", m.group(0), line))
            i = m.end()
            continue
        for p in _PUNCTS:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += len(p)
                break
        else:
            tokens.append(Token("punct", c, line))
            i += 1
    return tokens
