"""Arena-escape pass: arena-lifetime returns must be annotated.

Any function declaration (or inline definition) in a header under src/
whose return type hands out arena-backed memory must carry an
XY_ARENA_BOUND("<owner>") annotation:

  * a raw pointer or reference whose pointee is an arena-resident type
    (XmlNode, XmlAttribute, ... — Config.arena_types), including
    containers of raw pointers to them;
  * a std::string_view returned by a member of a class whose string
    storage lives in an arena or interner (Config.arena_view_classes).

Value returns (XmlNodePtr, std::string, Xid, ...) are exempt: they own
or copy.  Operators are skipped (documented approximation — the tree's
arena types expose named accessors, not operator[]).
"""

from .report import Finding


def _needs_annotation(decl, config):
    ret = decl.ret_type.split()
    if not ret:
        return None
    has_indirection = any(t in ("*", "&") for t in ret)
    if has_indirection and any(t in config.arena_types for t in ret):
        return ("returns a raw {} to arena-resident {}".format(
            "pointer" if "*" in ret else "reference",
            next(t for t in ret if t in config.arena_types)))
    if "string_view" in ret:
        owner_last = decl.owner.split("::")[-1] if decl.owner else ""
        if owner_last in config.arena_view_classes:
            return ("returns a string_view into {}'s arena/interned "
                    "storage".format(owner_last))
    return None


def check_arena(models, config):
    findings = []
    for m in models:
        if not m.rel.startswith(config.arena_header_dirs):
            continue
        if not m.rel.endswith(".h"):
            continue
        for d in m.decls:
            reason = _needs_annotation(d, config)
            if reason is None:
                continue
            if config.arena_annotation in d.annotations:
                continue
            symbol = "{}::{}".format(d.owner, d.name) if d.owner else d.name
            findings.append(Finding(
                "arena-escape", m.rel, d.line, symbol,
                "{} {}; annotate with {}(\"<owner>\") to make the "
                "lifetime contract explicit, or return an owning "
                "value".format(symbol, reason, config.arena_annotation)))
    return findings
