"""xyverify command line: scan, check, report.

Exit codes (matches xylint): 0 clean, 1 findings, 2 usage/internal.
"""

import argparse
import os
import sys
import time

from . import arena, baseline, layering, lockorder
from .config import Config
from .cppmodel import parse_file
from .report import render_sarif, render_text

_EXTS = (".h", ".cc")


def collect_files(root, subdirs):
    files = []
    for sub in subdirs:
        top = os.path.join(root, sub)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(_EXTS):
                    path = os.path.join(dirpath, name)
                    rel = os.path.relpath(path, root).replace(os.sep, "/")
                    files.append((path, rel))
    return files


def run(root, json_out=False, baseline_path=None, update_baseline=False,
        dump_locks=False, stats=False, subdirs=("src", "tools", "bench"),
        out=None):
    out = out or sys.stdout
    t0 = time.monotonic()
    config = Config()
    files = collect_files(root, subdirs)
    if not files:
        sys.stderr.write("xyverify: no sources under {}\n".format(root))
        return 2
    models = []
    for path, rel in files:
        try:
            models.append(parse_file(path, rel))
        except (OSError, RecursionError) as e:
            sys.stderr.write("xyverify: cannot analyze {}: {}\n".format(
                rel, e))
            return 2

    findings = []
    findings += layering.check_layering(models, config)
    lock_findings, analysis = lockorder.check_lock_order(
        models, config, dump=sys.stderr if dump_locks else None)
    findings += lock_findings
    findings += arena.check_arena(models, config)

    if baseline_path is None:
        baseline_path = os.path.join(root, "tools", "xyverify_baseline.json")
    baseline_rel = os.path.relpath(baseline_path, root).replace(os.sep, "/")
    entries = baseline.load(baseline_path)
    if update_baseline:
        baseline.update(baseline_path, findings, entries)
        out.write("xyverify: wrote {} ({} entries); new entries need "
                  "justifications before they suppress anything\n".format(
                      baseline_rel, len(findings)))
        return 0
    kept, suppressed = baseline.apply(findings, entries, baseline_rel)

    if stats:
        sys.stderr.write(
            "xyverify: {} files, {} functions, {} lock sites "
            "({} unresolved), {} findings ({} baselined), {:.2f}s\n".format(
                len(files), len(analysis.functions),
                sum(len(f.direct_locks) for f in analysis.functions),
                len(analysis.unresolved), len(kept), len(suppressed),
                time.monotonic() - t0))
    if json_out:
        render_sarif(kept, out)
    else:
        render_text(kept, out)
    return 1 if kept else 0


def main(argv=None):
    p = argparse.ArgumentParser(
        prog="xyverify",
        description="whole-program architecture, lock-order, and "
                    "arena-escape checks for the xydiff tree")
    p.add_argument("--root", default=None,
                   help="repository root (default: parent of tools/)")
    p.add_argument("--json", action="store_true",
                   help="emit SARIF-style JSON instead of text")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="baseline file (default tools/xyverify_baseline.json)")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline to cover current findings; "
                        "new entries are marked UNJUSTIFIED and still fail")
    p.add_argument("--dump-locks", action="store_true",
                   help="dump the lock-order graph and unresolved lock "
                        "expressions to stderr")
    p.add_argument("--stats", action="store_true",
                   help="print scan statistics to stderr")
    p.add_argument("--subdirs", default="src,tools,bench",
                   help="comma-separated subtrees to scan")
    args = p.parse_args(argv)
    root = args.root
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        root = os.path.dirname(root)
    return run(root, json_out=args.json, baseline_path=args.baseline,
               update_baseline=args.update_baseline,
               dump_locks=args.dump_locks, stats=args.stats,
               subdirs=tuple(s for s in args.subdirs.split(",") if s))


if __name__ == "__main__":
    sys.exit(main())
