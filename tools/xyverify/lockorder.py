"""Lock-order pass: build the global lock graph, reject cycles.

Lock identity (the graph nodes):

  * a mutex-typed class member  ->  "Class::member" — every instance of
    the class maps to ONE node (documented approximation; it can merge
    distinct instances, which is why ordered manual multi-lock protocols
    are exempted from the self-edge rule below),
  * a mutex-typed local         ->  "Function::name",
  * a function-static ShardedMutexMap family -> "file.cc::Accessor" —
    one node for the whole family (the map's own contract forbids
    holding two shards of one map).

Edges come from (1) an acquisition while another lock's scope is open in
the same function, and (2) a call made under a lock to a function whose
interprocedural closure acquires locks.  The closure is a fixpoint over
the call graph; calls resolve by receiver type when the receiver's
declaration is visible, else by globally-unique last name, else they are
ignored (documented approximation).

Self-edges where both acquisitions are RAII wrappers are reported as
lock-self-deadlock (non-recursive mutexes).  Manual lock()/unlock()
multi-lock protocols (which sort their targets first) are exempt.
"""

from .report import Finding

_SMART_PTRS = {"unique_ptr", "shared_ptr"}
_CONTAINERS = {"vector", "array", "deque", "span", "optional"}


class LockGraph:
    def __init__(self):
        self.edges = {}  # (a, b) -> witness list (first witness kept)

    def add(self, a, b, witness):
        self.edges.setdefault((a, b), witness)

    def nodes(self):
        out = set()
        for a, b in self.edges:
            out.add(a)
            out.add(b)
        return out

    def cycles(self):
        """Strongly connected components with >1 node, plus self-loops."""
        adj = {}
        for a, b in self.edges:
            adj.setdefault(a, []).append(b)
            adj.setdefault(b, [])
        index, low, on_stack = {}, {}, set()
        stack, sccs, counter = [], [], [0]

        def strongconnect(v):
            work = [(v, 0)]
            while work:
                node, pi = work.pop()
                if pi == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                for i in range(pi, len(adj[node])):
                    w = adj[node][i]
                    if w not in index:
                        work.append((node, i + 1))
                        work.append((w, 0))
                        recurse = True
                        break
                    if w in on_stack:
                        low[node] = min(low[node], index[w])
                if recurse:
                    continue
                if low[node] == index[node]:
                    scc = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == node:
                            break
                    sccs.append(scc)
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])

        for v in sorted(adj):
            if v not in index:
                strongconnect(v)
        bad = [sorted(s) for s in sccs if len(s) > 1]
        bad += [[a] for a, b in self.edges if a == b]
        return bad


class LockAnalysis:
    def __init__(self, models, config):
        self.config = config
        self.classes = {}      # class key (no namespaces) -> {member: type}
        self.functions = []    # FunctionInfo outside lock-impl files
        self.by_last = {}      # last name -> [fn]
        self.by_suffix = {}    # "Class::name" -> [fn]
        self.decl_ret = {}     # "owner::name" and "name" -> set of ret types
        self.decl_rel = {}     # same keys -> defining file
        self.unresolved = []   # (rel, line, text) — for --stats
        for m in models:
            for qual, ci in m.classes.items():
                self.classes.setdefault(qual, {}).update(ci.members)
            for d in m.decls:
                owner_last = d.owner.split("::")[-1] if d.owner else ""
                for key in (("{}::{}".format(owner_last, d.name)
                             if owner_last else d.name), d.name):
                    self.decl_ret.setdefault(key, set()).add(d.ret_type)
                    self.decl_rel.setdefault(key, d.rel)
            if m.rel in config.lock_impl_files:
                continue
            for fn in m.functions:
                self.functions.append(fn)
                parts = fn.qual.split("::")
                self.by_last.setdefault(parts[-1], []).append(fn)
                if len(parts) >= 2:
                    self.by_suffix.setdefault(
                        "::".join(parts[-2:]), []).append(fn)

    # ---- type machinery --------------------------------------------------

    def owner_class(self, fn):
        parts = fn.qual.split("::")[:-1]
        for k in range(len(parts)):
            cand = "::".join(parts[k:])
            if cand in self.classes:
                return cand
        return ""

    def base_name(self, type_text):
        """Principal class name of a type: last ident of the leading
        qualified-name, template args and cv/ref/ptr stripped."""
        toks = [t for t in type_text.split() if t != "const"]
        name = ""
        i = 0
        while i < len(toks):
            t = toks[i]
            if t == "::":
                i += 1
                continue
            if t[0].isalpha() or t[0] == "_":
                name = t
                if i + 1 < len(toks) and toks[i + 1] == "::":
                    i += 2
                    continue
                break
            break
        return name

    def class_key_of(self, type_text, context_owner):
        """Resolves a type text to a class-table key, unwrapping one
        pointer / reference / smart-pointer level."""
        base = self.base_name(type_text)
        if base in _SMART_PTRS:
            inner = self.template_arg(type_text)
            if inner is None:
                return None
            base = self.base_name(inner)
        if not base:
            return None
        # Exact, context-qualified, then unique-suffix match.
        if base in self.classes:
            exact = base
        else:
            exact = None
        scoped = []
        ctx = context_owner.split("::") if context_owner else []
        for key in self.classes:
            if key == base or key.endswith("::" + base):
                scoped.append(key)
        if len(scoped) == 1:
            return scoped[0]
        for key in scoped:
            head = key.rsplit("::", 1)[0] if "::" in key else ""
            if head and head in ctx:
                return key
            if context_owner and key.startswith(context_owner + "::"):
                return key
        return exact

    @staticmethod
    def template_args(type_text):
        toks = type_text.split()
        try:
            start = toks.index("<") + 1
        except ValueError:
            return []
        depth, args, cur = 1, [], []
        for t in toks[start:]:
            if t == "<":
                depth += 1
            elif t in (">", ">>"):
                depth -= 2 if t == ">>" else 1
                if depth <= 0:
                    break
            elif t == "," and depth == 1:
                args.append(" ".join(cur))
                cur = []
                continue
            cur.append(t)
        if cur:
            args.append(" ".join(cur))
        return args

    def template_arg(self, type_text):
        args = self.template_args(type_text)
        return args[0] if args else None

    def local_type(self, fn, name):
        """Declared type of a local, resolving structured bindings."""
        t = fn.locals.get(name)
        if t is None or not t.startswith("__binding "):
            return t
        _, mode, pos, expr = t.split(" ", 3)
        segs = self.split_postfix(expr.split())
        bound = self.type_of_chain(fn, segs) if segs else None
        if bound is None:
            return None
        if mode == "range":
            bound = self.element_type(bound)
        args = self.template_args(bound)
        if self.base_name(bound) in ("pair", "tuple") and \
                int(pos) < len(args):
            return args[int(pos)]
        return None

    def element_type(self, type_text):
        """Type after one [] / deref: container element or pointee."""
        base = self.base_name(type_text)
        if base in _CONTAINERS:
            return self.template_arg(type_text) or type_text
        toks = type_text.split()
        if toks and toks[-1] in ("*", "&"):
            return " ".join(toks[:-1])
        return type_text

    def ret_of(self, name, owner_last=None):
        keys = []
        if owner_last:
            keys.append("{}::{}".format(owner_last, name))
        keys.append(name)
        for key in keys:
            rets = {r for r in self.decl_ret.get(key, ()) if r}
            if not rets:
                continue
            # The declaration and the out-of-class definition may spell
            # the same type differently (`Document*` / `Warehouse::
            # Document*`); same base name means same type here.
            if len({self.base_name(r) for r in rets}) == 1:
                return sorted(rets, key=len)[-1], self.decl_rel.get(key, "")
            return None, ""
        return None, ""

    # ---- postfix expression resolution -----------------------------------

    @staticmethod
    def split_postfix(toks):
        segs, cur, depth = [], [], 0
        for t in toks:
            if t in ("(", "["):
                depth += 1
            elif t in (")", "]"):
                depth -= 1
            if t in (".", "->") and depth == 0:
                segs.append(cur)
                cur = []
            else:
                cur.append(t)
        segs.append(cur)
        return segs if all(segs) else None

    @staticmethod
    def parse_seg(seg):
        """-> (name, is_call, is_indexed) for one postfix segment."""
        toks = list(seg)
        # Strip a fully-parenthesized wrapper and leading * / &.
        while toks and toks[0] == "(" and toks[-1] == ")":
            depth = 0
            whole = True
            for i, t in enumerate(toks):
                if t == "(":
                    depth += 1
                elif t == ")":
                    depth -= 1
                    if depth == 0 and i != len(toks) - 1:
                        whole = False
                        break
            if not whole:
                break
            toks = toks[1:-1]
        while toks and toks[0] in ("*", "&"):
            toks = toks[1:]
        if not toks or not (toks[0][0].isalpha() or toks[0][0] == "_"):
            return None, False, False
        name = toks[0]
        is_call = len(toks) > 1 and toks[1] == "("
        is_indexed = "[" in toks
        return name, is_call, is_indexed

    def resolve_lock(self, fn, raw):
        """_RawLock -> stable lock id string, or None if not a mutex."""
        segs = self.split_postfix(raw.text.split())
        if not segs:
            return None
        owner = self.owner_class(fn)
        cur_type = None        # type text of the value so far
        family_id = None       # set when the chain passes a lock family
        id_owner = None        # class key the final member belongs to
        id_name = None         # final member/local name
        local_owner_fn = None
        for si, seg in enumerate(segs):
            name, is_call, is_indexed = self.parse_seg(seg)
            if name is None:
                return self.give_up(fn, raw)
            if si == 0:
                if name == "this":
                    cur_type = owner
                    continue
                if name in fn.locals and not is_call:
                    cur_type = self.local_type(fn, name)
                    if cur_type is None:
                        return self.give_up(fn, raw)
                    id_owner, id_name, local_owner_fn = None, name, fn
                elif is_call:
                    ret, rel = self.ret_of(name, owner.split("::")[-1]
                                           if owner else None)
                    if ret is None:
                        return self.give_up(fn, raw)
                    cur_type = ret
                    if "ShardedMutexMap" in ret:
                        family_id = "{}::{}".format(rel, name)
                    id_owner = id_name = None
                else:
                    found = None
                    probe = owner
                    while probe:
                        members = self.classes.get(probe, {})
                        if name in members:
                            found = (members[name], probe)
                            break
                        probe = probe.rsplit("::", 1)[0] \
                            if "::" in probe else ""
                    if found is None:
                        return self.give_up(fn, raw)
                    cur_type, id_owner = found
                    id_name, local_owner_fn = name, None
            else:
                if is_call:
                    if (name == "For" and cur_type and
                            "ShardedMutexMap" in cur_type):
                        cur_type = "Mutex"
                        continue
                    key = self.class_key_of(cur_type or "", owner)
                    ret, rel = self.ret_of(
                        name, key.split("::")[-1] if key else None)
                    if ret is None:
                        return self.give_up(fn, raw)
                    cur_type = ret
                    if "ShardedMutexMap" in ret:
                        family_id = "{}::{}".format(rel, name)
                    id_owner = id_name = None
                else:
                    key = self.class_key_of(cur_type or "", owner)
                    members = self.classes.get(key or "", {})
                    if name not in members:
                        return self.give_up(fn, raw)
                    cur_type = members[name]
                    id_owner, id_name, local_owner_fn = key, name, None
            if is_indexed:
                cur_type = self.element_type(cur_type or "")
        base = self.base_name(cur_type or "")
        if base not in self.config.mutex_types:
            return None  # Not a lockable — e.g. unlock() on a file handle.
        if family_id:
            return family_id
        if id_owner:
            return "{}::{}".format(id_owner, id_name)
        if local_owner_fn is not None and id_name:
            return "{}::{}".format(local_owner_fn.qual, id_name)
        return self.give_up(fn, raw)

    def give_up(self, fn, raw):
        self.unresolved.append((raw.rel, raw.line, raw.text))
        return None

    # ---- call resolution -------------------------------------------------

    def resolve_call(self, fn, cs):
        if cs.name in ("lock", "unlock", "lock_shared", "unlock_shared"):
            return None
        if cs.receiver_type:
            # A receiver-typed call resolves through the receiver's class
            # or not at all: falling back to name matching would bind
            # e.g. `cv_.Wait(mu)` to an unrelated `ThreadPool::Wait`.
            segs = self.split_postfix([t.text for t in cs.receiver_type])
            key = self.receiver_class(fn, segs)
            if not key:
                return None
            cands = self.by_suffix.get(
                "{}::{}".format(key.split("::")[-1], cs.name), [])
            if len(cands) == 1:
                return cands[0]
            return None
        cands = self.by_last.get(cs.name, [])
        if len(cands) == 1:
            return cands[0]
        return None

    def receiver_class(self, fn, segs):
        """Class key of a receiver postfix chain, or None."""
        t = self.type_of_chain(fn, segs)
        if t is None:
            return None
        return self.class_key_of(t, self.owner_class(fn))

    def type_of_chain(self, fn, segs):
        """Type text of a postfix chain, or None."""
        if not segs:
            return None
        owner = self.owner_class(fn)
        cur_type = None
        for si, seg in enumerate(segs):
            name, is_call, is_indexed = self.parse_seg(seg)
            if name is None:
                return None
            if si == 0:
                if name == "this":
                    cur_type = owner
                elif name in fn.locals and not is_call:
                    cur_type = self.local_type(fn, name)
                    if cur_type is None:
                        return None
                elif is_call:
                    ret, _ = self.ret_of(name, owner.split("::")[-1]
                                         if owner else None)
                    if ret is None:
                        return None
                    cur_type = ret
                else:
                    probe = owner
                    cur_type = None
                    while probe:
                        members = self.classes.get(probe, {})
                        if name in members:
                            cur_type = members[name]
                            break
                        probe = probe.rsplit("::", 1)[0] \
                            if "::" in probe else ""
                    if cur_type is None:
                        return None
            else:
                key = self.class_key_of(cur_type or "", owner)
                members = self.classes.get(key or "", {})
                if is_call:
                    ret, _ = self.ret_of(
                        name, key.split("::")[-1] if key else None)
                    if ret is None:
                        return None
                    cur_type = ret
                elif name in members:
                    cur_type = members[name]
                else:
                    return None
            if is_indexed:
                cur_type = self.element_type(cur_type or "")
        return cur_type


def check_lock_order(models, config, dump=None):
    an = LockAnalysis(models, config)
    findings = []
    graph = LockGraph()
    resolved = {}   # id(raw) -> lock id or None

    def rid(raw):
        k = id(raw)
        if k not in resolved:
            resolved[k] = None
        return resolved[k]

    for fn in an.functions:
        for raw, _line in fn.direct_locks:
            resolved[id(raw)] = an.resolve_lock(fn, raw)

    # Intra-function nesting edges (and RAII self-deadlocks).
    for fn in an.functions:
        for outer, inner, o_line, i_line, any_manual in fn.nested:
            a, b = rid(outer), rid(inner)
            if a is None or b is None:
                continue
            if a == b:
                if not any_manual:
                    findings.append(Finding(
                        "lock-self-deadlock", fn.rel, i_line, fn.qual,
                        "{} re-acquires {} (held since line {}) with a "
                        "scoped lock; Mutex is non-recursive".format(
                            fn.qual, a, o_line)))
                continue
            graph.add(a, b, [
                "{}:{}: {} acquires {}".format(fn.rel, o_line, fn.qual, a),
                "{}:{}: ... then acquires {} while holding it".format(
                    fn.rel, i_line, b)])
        for lock, first, again, any_manual in fn.reacquired:
            a = rid(lock)
            if a is None or any_manual:
                continue
            findings.append(Finding(
                "lock-self-deadlock", fn.rel, again, fn.qual,
                "{} re-acquires {} (held since line {}) with a scoped "
                "lock; Mutex is non-recursive".format(fn.qual, a, first)))

    # Interprocedural closure: which locks does each function acquire,
    # directly or through calls?
    fid = {id(fn): fn for fn in an.functions}
    acquired = {}
    call_edges = {}
    for fn in an.functions:
        acquired[id(fn)] = {}
        for raw, line in fn.direct_locks:
            a = rid(raw)
            if a is not None:
                acquired[id(fn)].setdefault(a, ("direct", fn, line))
        call_edges[id(fn)] = []
        for cs in fn.calls:
            callee = an.resolve_call(fn, cs)
            if callee is not None and callee is not fn:
                call_edges[id(fn)].append((callee, cs))
    changed = True
    while changed:
        changed = False
        for fn in an.functions:
            mine = acquired[id(fn)]
            for callee, cs in call_edges[id(fn)]:
                for lock, _w in acquired[id(callee)].items():
                    if lock not in mine:
                        mine[lock] = ("via", callee, cs.line)
                        changed = True

    def witness_chain(start_fn, lock):
        chain = []
        fn = start_fn
        guard = 0
        while guard < 32:
            guard += 1
            kind = acquired[id(fn)].get(lock)
            if kind is None:
                break
            if kind[0] == "direct":
                chain.append("{}:{}: {} acquires {}".format(
                    fn.rel, kind[2], fn.qual, lock))
                break
            chain.append("{}:{}: {} calls {}".format(
                fn.rel, kind[2], fn.qual, kind[1].qual))
            fn = kind[1]
        return chain

    # Edges from calls made while holding locks.
    for fn in an.functions:
        for callee, cs in call_edges[id(fn)]:
            if not cs.held:
                continue
            inner_locks = acquired[id(callee)]
            if not inner_locks:
                continue
            for raw, h_line in cs.held:
                a = rid(raw)
                if a is None:
                    continue
                for b in inner_locks:
                    if b == a:
                        continue  # Instance merging makes a==b unreliable.
                    graph.add(a, b, [
                        "{}:{}: {} acquires {}".format(
                            fn.rel, h_line, fn.qual, a),
                        "{}:{}: ... then calls {} while holding it".format(
                            fn.rel, cs.line, callee.qual)]
                        + witness_chain(callee, b))

    for cycle in graph.cycles():
        witness = []
        nodes = set(cycle)
        for (a, b), w in sorted(graph.edges.items()):
            if a in nodes and b in nodes:
                witness.extend(w)
        anchor_rel, anchor_line = "src", 0
        if witness:
            head = witness[0].split(":", 2)
            if len(head) >= 2 and head[1].isdigit():
                anchor_rel, anchor_line = head[0], int(head[1])
        findings.append(Finding(
            "lock-order-cycle", anchor_rel, anchor_line,
            "+".join(sorted(nodes)),
            "lock-order cycle between {}; a consistent acquisition order "
            "is required".format(", ".join(sorted(nodes))), witness))

    if dump is not None:
        for (a, b), w in sorted(graph.edges.items()):
            dump.write("{} -> {}\n".format(a, b))
            for line in w:
                dump.write("    {}\n".format(line))
        if an.unresolved:
            dump.write("unresolved lock expressions:\n")
            for rel, line, text in an.unresolved:
                dump.write("    {}:{}: {}\n".format(rel, line, text))
    return findings, an
