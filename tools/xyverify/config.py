"""Project-specific configuration for the xyverify rule passes.

Everything the analyzer knows about xydiff's architecture lives here, so
the passes themselves stay generic and the fixture corpus can swap in a
tiny configuration of its own.
"""


class Config:
    def __init__(self):
        # ---- layering --------------------------------------------------
        # The architecture order, lowest first.  A file may include only
        # headers in its own layer or a strictly lower one.
        self.layer_order = [
            "util", "xid", "xml", "delta", "baseline", "core", "simulator",
            "version", "monitor", "warehouse", "top",
        ]
        # Path-prefix (or exact-path) -> layer.  First match wins, so the
        # warehouse files are carved out of src/version before the
        # directory rule catches them: the warehouse is the assembly layer
        # that sits ABOVE the monitor modules it drives.
        self.layer_map = [
            ("src/version/warehouse.h", "warehouse"),
            ("src/version/warehouse.cc", "warehouse"),
            ("src/util/", "util"),
            ("src/xid/", "xid"),
            ("src/xml/", "xml"),
            ("src/delta/", "delta"),
            ("src/baseline/", "baseline"),
            ("src/core/", "core"),
            ("src/simulator/", "simulator"),
            ("src/version/", "version"),
            ("src/monitor/", "monitor"),
            ("src/fuzz/", "top"),
            ("src/xydiff.h", "top"),  # The umbrella re-exports everything.
            ("tools/", "top"),
            ("bench/", "top"),
            ("tests/", "top"),
        ]
        # The umbrella header: nothing inside src/ may include it (the
        # public surface depends on the modules, never the reverse).
        self.umbrella = "xydiff.h"

        # ---- lock order ------------------------------------------------
        # RAII lock wrappers: constructing one acquires the capability
        # named by its first argument for the rest of the enclosing scope.
        self.scoped_locks = {"MutexLock", "WriterMutexLock", "ReaderMutexLock"}
        # Mutex-like types: a member/local/static of one of these is a
        # lock-graph node.  ShardedMutexMap is a keyed family treated as
        # ONE node (its own contract already forbids holding two shards).
        self.mutex_types = {"Mutex", "SharedMutex", "ShardedMutexMap"}
        # Files whose lock()/unlock() calls are the *implementation* of
        # the wrappers, not acquisitions in their own right.
        self.lock_impl_files = {"src/util/mutex.h"}

        # ---- arena escape ----------------------------------------------
        # Types whose instances (or whose string storage) live in a
        # per-document arena.  Returning a raw pointer or reference to one
        # of these hands out memory with arena lifetime.
        self.arena_types = {"XmlNode", "XmlAttribute", "AttributeList",
                            "Delta"}
        # Classes whose string_view accessors view arena (or otherwise
        # caller-invisible) storage: members returning string_view (or
        # string_view*/&) must be annotated.
        self.arena_view_classes = {"XmlNode", "XmlAttribute", "StringInterner",
                                   "DiffTree", "Delta", "LabelTable"}
        self.arena_annotation = "XY_ARENA_BOUND"
        # Headers are the API surface the rule audits.
        self.arena_header_dirs = ("src/",)
