"""Finding type, text rendering, and SARIF-style JSON output."""

import json


class Finding:
    """One analyzer finding.

    The fingerprint is deliberately line-independent (rule + file +
    symbol) so baseline entries survive unrelated edits; `symbol` is the
    stable anchor (an include edge, a cycle's node set, a declaration's
    qualified name).
    """

    def __init__(self, rule, rel, line, symbol, message, witness=None):
        self.rule = rule
        self.rel = rel
        self.line = line
        self.symbol = symbol
        self.message = message
        self.witness = witness or []

    @property
    def fingerprint(self):
        return "{}|{}|{}".format(self.rule, self.rel, self.symbol)

    def sort_key(self):
        return (self.rule, self.rel, self.line, self.symbol)


_RULE_HELP = {
    "layering": "include must point to the same or a lower layer",
    "umbrella-include": "src/ modules must not include the umbrella header",
    "lock-order-cycle": "lock acquisition order must form a DAG",
    "lock-self-deadlock": "scoped re-acquisition of a held non-recursive "
                          "mutex",
    "arena-escape": "arena-backed return needs XY_ARENA_BOUND",
    "baseline-stale": "baseline entry matches no current finding",
    "baseline-unjustified": "baseline entry lacks a real justification",
}


def render_text(findings, out):
    for f in sorted(findings, key=Finding.sort_key):
        out.write("{}:{}: [{}] {}\n".format(f.rel, f.line, f.rule, f.message))
        for w in f.witness:
            out.write("    {}\n".format(w))
    if findings:
        out.write("xyverify: {} finding(s)\n".format(len(findings)))


def render_sarif(findings, out):
    """Minimal SARIF 2.1.0 — one run, one result per finding."""
    rules = sorted({f.rule for f in findings} | set(_RULE_HELP))
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "xyverify",
                "informationUri": "tools/xyverify",
                "rules": [{"id": r,
                           "shortDescription": {"text": _RULE_HELP.get(r, r)}}
                          for r in rules],
            }},
            "results": [{
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": f.message + (
                    "" if not f.witness else "\n" + "\n".join(f.witness))},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.rel},
                        "region": {"startLine": max(1, f.line)},
                    }
                }],
                "partialFingerprints": {"xyverify/v1": f.fingerprint},
            } for f in sorted(findings, key=Finding.sort_key)],
        }],
    }
    json.dump(doc, out, indent=2, sort_keys=True)
    out.write("\n")
