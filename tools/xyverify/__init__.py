"""xyverify — whole-program static analyzer for the xydiff tree.

Where xylint (tools/xylint.py) enforces single-line idioms with regexes,
xyverify lexes every translation unit into a token/scope stream, builds a
per-TU model (includes, classes, functions, lock-acquisition scopes,
declarations), and checks three *cross-TU* rule families no per-file or
per-TU tool can see:

  layering       The include DAG must follow the architecture order
                 util -> xid -> xml -> delta -> baseline -> core ->
                 simulator -> version -> monitor -> warehouse ->
                 fuzz/tools/bench.  Upward or sideways includes and any
                 use of the umbrella header (src/xydiff.h) inside src/
                 are findings.

  lock-order     Lock-acquisition scopes are recovered from the annotated
                 MutexLock / WriterMutexLock / ReaderMutexLock wrappers
                 and manual lock()/unlock() pairs, a global lock-order
                 graph is assembled across all TUs (with one level of
                 interprocedural closure through the call graph), and any
                 cycle — a potential deadlock — is reported with the full
                 witness chain per edge.

  arena-escape   Header declarations that return raw pointers,
                 references, or string_views derived from arena-backed
                 types (XmlNode, interned labels, delta snapshots) must
                 carry an XY_ARENA_BOUND("<owner>") annotation naming the
                 owning document/arena, so every arena-lifetime contract
                 in the API surface is explicit and machine-checked.

Findings are emitted as human-readable text or SARIF-style JSON
(--json), and are suppressible only through a checked-in baseline file
(--baseline, default tools/xyverify_baseline.json) whose entries each
carry a non-placeholder justification.  See DESIGN.md §3.16 for the TU
model and the documented approximations.

Zero dependencies (stdlib only), like xylint.
"""

__all__ = ["main"]

from .cli import main  # noqa: E402  (re-export for python -m / dir execution)
