"""Per-TU model construction: includes, classes, functions, lock scopes.

One pass over the token stream of every file builds:

  * the include list (for the layering pass),
  * a class table (qualified class name -> member name -> type text,
    plus function-local classes being rare enough to ignore),
  * a function table: every function DEFINITION with its qualified name,
    return type, the lock-acquisition scopes in its body, the nesting
    edges between them, and every call site with the locks held there.

The model is flow-insensitive inside a scope (an acquisition covers its
enclosing brace scope; loops are traversed once) and resolves names
structurally, not semantically.  The documented approximations
(DESIGN.md §3.16): lambda bodies are analyzed inline at their definition
site; calls resolve by receiver type when a local/member/param
declaration gives one, else by globally-unique last name; template and
overload sets collapse onto one name; lock identity is the declaring
class member (all instances of a class share a node), a function-local
variable, or the accessor function for function-static lock families.
"""

import re

from .lexer import lex

_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "catch",
    "new", "delete", "static_cast", "dynamic_cast", "const_cast",
    "reinterpret_cast", "throw", "co_await", "co_return", "co_yield",
    "assert", "decltype", "noexcept", "alignas", "defined",
}

_TYPE_SPECIFIERS = {
    "const", "constexpr", "constinit", "consteval", "static", "inline",
    "virtual", "explicit", "mutable", "friend", "typename", "volatile",
    "extern", "register", "thread_local", "auto",
}

_INCLUDE_RE = re.compile(r'#\s*include\s+"([^"]+)"')


class ClassInfo:
    def __init__(self, qual):
        self.qual = qual              # e.g. "Warehouse::Document"
        self.members = {}             # member name -> type text


class LockScope:
    __slots__ = ("lock_id", "line", "depth", "manual")

    def __init__(self, lock_id, line, depth, manual):
        self.lock_id = lock_id
        self.line = line
        self.depth = depth
        self.manual = manual


class CallSite:
    __slots__ = ("held", "receiver_type", "name", "line")

    def __init__(self, held, receiver_type, name, line):
        self.held = held              # [(lock_id, acquire_line)]
        self.receiver_type = receiver_type
        self.name = name
        self.line = line


class DeclInfo:
    """A function declaration or definition head (for the arena pass)."""

    __slots__ = ("owner", "name", "ret_type", "annotations", "line", "rel")

    def __init__(self, owner, name, ret_type, annotations, line, rel):
        self.owner = owner            # enclosing class qual ("" for free)
        self.name = name
        self.ret_type = ret_type      # type text, specifiers stripped
        self.annotations = annotations  # set of XY_* idents on the decl
        self.line = line
        self.rel = rel


class FunctionInfo:
    def __init__(self, qual, rel, line):
        self.qual = qual              # e.g. "Warehouse::DiffBatch"
        self.rel = rel
        self.line = line
        self.ret_type = ""
        self.direct_locks = []        # [(lock_id, line)]
        self.nested = []              # [(outer_id, inner_id, o_line, i_line)]
        self.reacquired = []          # [(lock_id, first_line, again_line)]
        self.calls = []               # [CallSite]
        self.locals = {}              # var name -> type text


class TUModel:
    def __init__(self, rel):
        self.rel = rel
        self.includes = []            # [(target, line)]
        self.classes = {}             # qual -> ClassInfo
        self.functions = []           # [FunctionInfo]
        self.decls = []               # [DeclInfo]


def _matching(tokens, i, open_t, close_t):
    """Index of the token closing the bracket opened at i (or len)."""
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return j
    return len(tokens)


def _rmatching(tokens, i, open_t, close_t):
    """Index of the token opening the bracket closed at i (or -1)."""
    depth = 0
    for j in range(i, -1, -1):
        t = tokens[j].text
        if t == close_t:
            depth += 1
        elif t == open_t:
            depth -= 1
            if depth == 0:
                return j
    return -1


def _type_text(tokens):
    return " ".join(t.text for t in tokens)


class _Scope:
    """One brace scope: namespace / class / function body / plain block."""

    def __init__(self, kind, name=""):
        self.kind = kind              # namespace | class | function | block
        self.name = name


def parse_file(path, rel, text=None):
    if text is None:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    tokens = lex(text)
    model = TUModel(rel)
    for t in tokens:
        if t.kind == "directive":
            m = _INCLUDE_RE.match(t.text)
            if m:
                model.includes.append((m.group(1), t.line))
    _Parser(model, tokens, rel).run()
    return model


class _Parser:
    def __init__(self, model, tokens, rel):
        self.model = model
        self.tokens = tokens
        self.rel = rel
        self.scopes = []              # _Scope stack, one per open `{`
        self.fn = None                # current FunctionInfo (innermost)
        self.fn_depth = -1            # scope depth where current fn began
        self.open_locks = []          # LockScope stack (current function)

    # ---- context helpers -------------------------------------------------

    def class_context(self):
        return [s.name for s in self.scopes if s.kind == "class"]

    def namespace_context(self):
        return [s.name for s in self.scopes if s.kind == "namespace" and s.name]

    def current_class_qual(self):
        ctx = self.class_context()
        return "::".join(ctx) if ctx else ""

    def in_local_class(self):
        """True when the innermost scopes include a class defined inside
        the current function (its body is member territory, not
        statements of the function)."""
        for s in self.scopes[self.fn_depth + 1:]:
            if s.kind == "class":
                return True
        return False

    # ---- main loop -------------------------------------------------------

    def run(self):
        tokens = self.tokens
        i = 0
        while i < len(tokens):
            t = tokens[i]
            if t.kind == "directive":
                i += 1
                continue
            if t.text == "{":
                i = self.open_brace(i)
                continue
            if t.text == "}":
                self.close_brace()
                i += 1
                continue
            if self.fn is not None and not self.in_local_class():
                i = self.in_function_token(i)
                continue
            i = self.at_decl_scope_token(i)

    # ---- scope transitions ----------------------------------------------

    def open_brace(self, i):
        """Classifies the `{` at i, pushes a scope, returns next index."""
        tokens = self.tokens
        kind, name = self.classify_brace(i)
        if kind == "skip":
            # Initializer / enum body — consume without entering.
            return _matching(tokens, i, "{", "}") + 1
        if kind == "function":
            if self.fn is not None:
                # A lambda inside a function: analyze inline, keep the
                # enclosing function as the model (approximation).
                self.scopes.append(_Scope("block"))
                return i + 1
            qual_parts = self.namespace_context() + self.class_context()
            qual = "::".join([p for p in qual_parts if p] + [name])
            self.fn = FunctionInfo(qual, self.rel, tokens[i].line)
            self.fn.ret_type, params = self.signature_parts(
                i, name.split("::")[-1])
            self.fn.locals.update(params)
            self.fn_depth = len(self.scopes)
            self.scopes.append(_Scope("function", name))
            self.register_function(self.fn)
            self.record_definition_decl(i, name)
            return i + 1
        self.scopes.append(_Scope(kind, name))
        return i + 1

    def close_brace(self):
        if not self.scopes:
            return
        depth = len(self.scopes) - 1
        # RAII locks die with their scope; manual lock() calls persist
        # until an explicit unlock() or the end of the function.
        self.open_locks = [s for s in self.open_locks
                           if s.manual or s.depth < depth]
        scope = self.scopes.pop()
        if scope.kind == "function" and len(self.scopes) == self.fn_depth:
            self.fn = None
            self.fn_depth = -1
            self.open_locks = []

    def classify_brace(self, i):
        """What does the `{` at i open?  -> (kind, name)"""
        tokens = self.tokens
        j = i - 1
        # Skip trailing decorations between ')' / class-head and '{'.
        while j >= 0:
            t = tokens[j]
            if t.text == ")":
                # An annotation macro call (`XY_REQUIRES(mu)`) is a
                # decoration, not the parameter list.
                op = _rmatching(tokens, j, "(", ")")
                if op > 0 and tokens[op - 1].kind == "ident" and \
                        tokens[op - 1].text.startswith("XY_"):
                    j = op - 2
                    continue
                break
            if t.text == "]":
                break
            if t.kind == "ident" and t.text in (
                    "const", "noexcept", "override", "final", "mutable",
                    "try") or t.text.startswith("XY_"):
                j -= 1
                continue
            if t.text == ":":  # ctor init list or class bases — scan on
                j -= 1
                continue
            break
        if j < 0:
            return "block", ""
        t = tokens[j]
        # `-> type {` trailing return: walk back over the type to ')'.
        k = j
        while k >= 0 and tokens[k].text not in (")", ";", "{", "}"):
            if tokens[k].text == "->":
                close = k - 1
                if close >= 0 and tokens[close].text == ")":
                    k = close
                    t = tokens[k]
                    j = k
                break
            k -= 1
        if t.text == ")":
            op = _rmatching(tokens, j, "(", ")")
            if op > 0 and tokens[op - 1].text == "]":
                return "function", "<lambda>"  # Captured-param lambda.
            # Walk back over a constructor initializer list:
            # `Ctor(args) : a_(x), b_(y) {` — each `name(…)` preceded by
            # `,` or `:` is an initializer, not the signature.
            guard = 0
            while (op > 1 and tokens[op - 1].kind == "ident" and
                   op - 2 >= 0 and tokens[op - 2].text in (",", ":") and
                   guard < 64):
                prev = op - 3
                if prev < 0 or tokens[prev].text not in (")", "}"):
                    break
                op = _rmatching(tokens, prev, "(" if tokens[prev].text == ")"
                                else "{", tokens[prev].text)
                guard += 1
            name_i = op - 1
            if name_i >= 0 and tokens[name_i].kind == "ident":
                name = tokens[name_i].text
                if name in ("if", "for", "while", "switch", "catch",
                            "return"):
                    return "block", ""
                if name_i >= 1 and tokens[name_i - 1].text == "~":
                    name = "~" + name
                    name_i -= 1
                # Prepend `Qual::` path for out-of-class definitions.
                while (name_i >= 2 and tokens[name_i - 1].text == "::" and
                       tokens[name_i - 2].kind == "ident"):
                    name = tokens[name_i - 2].text + "::" + name
                    name_i -= 2
                return "function", name
            return "block", ""
        if t.text == "]":
            return "function", "<lambda>"
        if t.kind == "ident":
            if t.text in ("else", "do", "try"):
                return "block", ""
            # class / struct / namespace / enum heads, walked back
            # (skipping balanced parens so `class XY_CAPABILITY("m") X {`
            # still finds the keyword).
            k = j
            while k >= 0 and tokens[k].text not in (";", "{", "}"):
                head = tokens[k].text
                if head == ")":
                    k = _rmatching(tokens, k, "(", ")") - 1
                    continue
                if head in ("class", "struct", "union"):
                    return "class", self.head_name(k)
                if head == "namespace":
                    return "namespace", self.head_name(k)
                if head == "enum":
                    return "skip", ""
                if head in ("case", "default"):
                    return "block", ""
                k -= 1
            return "skip", ""  # `Type name{...}` initializer or array init.
        if t.text == "=":
            return "skip", ""  # `= {...}` initializer.
        return "block", ""

    def head_name(self, k):
        """Name following a class/struct/namespace keyword at k."""
        tokens = self.tokens
        name = ""
        j = k + 1
        while j < len(tokens) and tokens[j].text not in ("{", ":", ";"):
            if tokens[j].kind == "ident" and not tokens[j].text.startswith(
                    ("XY_", "alignas", "final")):
                name = tokens[j].text
            j += 1
        return name

    def signature_parts(self, brace_i, fn_name):
        """Return-type text and param locals for the definition at brace_i."""
        tokens = self.tokens
        # Find the parameter list: last ')' before the brace decorations,
        # skipping over annotation macro calls (`XY_REQUIRES(mu)`).
        j = brace_i - 1
        while j >= 0:
            if tokens[j].text in (";", "{", "}"):
                return "", {}
            if tokens[j].text == ")":
                op = _rmatching(tokens, j, "(", ")")
                if op > 0 and tokens[op - 1].kind == "ident" and \
                        tokens[op - 1].text.startswith("XY_"):
                    j = op - 2
                    continue
                break
            j -= 1
        if j < 0:
            return "", {}
        close = j
        op = _rmatching(tokens, close, "(", ")")
        if op <= 0:
            return "", {}
        # Constructor init lists: `) : member(x), member{y} {` — the ')'
        # we found may belong to an initializer; walk back to the ')' that
        # is directly preceded by the function name's parameter list.
        name_i = op - 1
        guard = 0
        while name_i > 0 and (tokens[name_i].kind != "ident" or
                              tokens[name_i].text != fn_name) and guard < 64:
            close = _rmatching(tokens, op - 1, "(", ")") \
                if tokens[op - 1].text == ")" else -1
            if close <= 0:
                break
            op = _rmatching(tokens, close, "(", ")")
            name_i = op - 1
            guard += 1
        if op <= 0:
            return "", {}
        # Return type: tokens from the previous boundary to the name,
        # minus qualifier path (Class::) and specifiers.
        start = name_i
        while start > 0 and tokens[start - 1].text == "::":
            start -= 2  # skip `Qual ::`
        b = start - 1
        while b >= 0 and tokens[b].text not in (";", "}", "{", ":") and \
                tokens[b].kind != "directive":
            if tokens[b].text == ")":
                break
            if tokens[b].text in (">", ">>"):
                depth = 2 if tokens[b].text == ">>" else 1
                b -= 1
                while b >= 0 and depth > 0:
                    tb = tokens[b].text
                    if tb in (">", ">>"):
                        depth += 2 if tb == ">>" else 1
                    elif tb == "<":
                        depth -= 1
                    b -= 1
                continue
            b -= 1
        ret = [t.text for t in tokens[b + 1:start]
               if t.text not in _TYPE_SPECIFIERS]
        params = self.parse_params(op, close)
        return " ".join(ret), params

    def parse_params(self, op, close):
        """`Type name` pairs from a parameter list."""
        params = {}
        seg = []
        for t in self.tokens[op + 1:close]:
            if t.text == ",":
                self.param_from(seg, params)
                seg = []
            else:
                seg.append(t)
        self.param_from(seg, params)
        return params

    @staticmethod
    def param_from(seg, params):
        # Drop default arguments.
        for idx, t in enumerate(seg):
            if t.text == "=":
                seg = seg[:idx]
                break
        if len(seg) < 2 or seg[-1].kind != "ident":
            return
        name = seg[-1].text
        type_toks = [t.text for t in seg[:-1] if t.text not in _TYPE_SPECIFIERS]
        if type_toks:
            params[name] = " ".join(type_toks)

    def register_function(self, fn):
        self.model.functions.append(fn)

    def record_definition_decl(self, brace_i, name):
        """DeclInfo for an inline/out-of-line definition (arena pass)."""
        tokens = self.tokens
        annos = set()
        j = brace_i - 1
        while j >= 0:
            if tokens[j].text == ")":
                # An annotation macro call (`XY_ARENA_BOUND("doc")`) sits
                # between the parameter list and the brace; record it and
                # keep scanning. Any other ')' is the parameter list.
                op = _rmatching(tokens, j, "(", ")")
                if op > 0 and tokens[op - 1].kind == "ident" and \
                        tokens[op - 1].text.startswith("XY_"):
                    annos.add(tokens[op - 1].text)
                    j = op - 2
                    continue
                break
            if tokens[j].kind == "ident" and tokens[j].text.startswith("XY_"):
                annos.add(tokens[j].text)
            if tokens[j].text in (";", "{", "}"):
                break
            j -= 1
        last = name.split("::")[-1]
        owner_parts = self.class_context() + name.split("::")[:-1]
        self.model.decls.append(DeclInfo(
            "::".join(owner_parts), last, self.fn.ret_type, annos,
            tokens[brace_i].line, self.rel))

    # ---- class (and namespace) scope ------------------------------------

    def at_decl_scope_token(self, i):
        """Handles one token at class/namespace scope (not in a function)."""
        tokens = self.tokens
        in_class = any(s.kind == "class" for s in self.scopes)
        # Collect one declaration: from here to `;` at this depth, unless
        # a `{` turns it into a definition (handled by braces).
        t = tokens[i]
        if t.text == ";":
            return i + 1
        start = i
        j = i
        while j < len(tokens) and tokens[j].text not in (";", "{", "}"):
            if tokens[j].text == "(":
                j = _matching(tokens, j, "(", ")")
            elif tokens[j].text == "<":
                # Balanced template args (best effort; `<` as less-than
                # does not appear in member declarations).
                j = self.skip_angles(j)
            j += 1
        if j >= len(tokens) or tokens[j].text != ";":
            return j  # Let run() classify the `{`.
        seg = self.strip_access_labels(tokens[start:j])
        if any(t2.text == "(" for t2 in seg):
            self.function_decl_from(seg)
        elif in_class:
            self.member_from(seg)
        return j + 1

    @staticmethod
    def strip_access_labels(seg):
        while (len(seg) >= 2 and seg[0].kind == "ident" and
               seg[0].text in ("public", "private", "protected") and
               seg[1].text == ":"):
            seg = seg[2:]
        return seg

    def function_decl_from(self, seg):
        """DeclInfo for a `Ret name(args) quals XY_*(..);` declaration."""
        if not seg:
            return
        if seg[0].kind == "ident" and seg[0].text in (
                "using", "typedef", "friend", "template", "static_assert",
                "operator"):
            return
        # Name: the ident directly before the first top-level '('.
        paren = next((k for k, t in enumerate(seg) if t.text == "("), -1)
        if paren <= 0 or seg[paren - 1].kind != "ident":
            return
        name = seg[paren - 1].text
        if name == "operator" or name in _KEYWORDS:
            return
        start = paren - 1
        while start >= 2 and seg[start - 1].text == "::":
            start -= 2
        ret = [t.text for t in seg[:start]
               if t.text not in _TYPE_SPECIFIERS and
               not t.text.startswith("XY_")]
        close = _matching(seg, paren, "(", ")")
        annos = {t.text for t in seg[close:] if t.kind == "ident" and
                 t.text.startswith("XY_")}
        if not ret:
            return  # Constructors / conversion operators.
        self.model.decls.append(DeclInfo(
            "::".join(self.class_context()), name, " ".join(ret), annos,
            seg[0].line, self.rel))

    def skip_angles(self, i):
        depth = 0
        for j in range(i, len(self.tokens)):
            t = self.tokens[j].text
            if t == "<":
                depth += 1
            elif t in (">", ">>"):
                depth -= 2 if t == ">>" else 1
                if depth <= 0:
                    return j
            elif t in (";", "{", "}"):
                return i  # Not a template argument list after all.
        return i

    def member_from(self, seg):
        """Records `Type name;`-shaped members of the innermost class."""
        toks = list(seg)
        if not toks:
            return
        if toks[0].kind == "ident" and toks[0].text in (
                "public", "private", "protected", "using", "typedef",
                "friend", "template", "static_assert", "enum"):
            return
        # Strip initializers, then trailing annotation macro calls
        # (`XY_GUARDED_BY(m)` and friends).
        for idx, t in enumerate(toks):
            if t.text == "=":
                toks = toks[:idx]
                break
        while toks and toks[-1].text == ")":
            op = _rmatching(toks, len(toks) - 1, "(", ")")
            if op <= 0 or toks[op - 1].kind != "ident":
                return
            macro = toks[op - 1].text
            if macro.startswith("XY_") or macro.isupper():
                toks = toks[:op - 1]
                continue
            return  # `name(args)` — a declaration, not a data member.
        if any(t.text == "(" for t in toks):
            return  # Function declaration shapes.
        if len(toks) < 2 or toks[-1].kind != "ident":
            return
        name = toks[-1].text
        type_toks = [t.text for t in toks[:-1]
                     if t.text not in _TYPE_SPECIFIERS]
        if not type_toks:
            return
        qual = "::".join(self.class_context())
        info = self.model.classes.setdefault(qual, ClassInfo(qual))
        info.members[name] = " ".join(type_toks)

    # ---- function bodies -------------------------------------------------

    def in_function_token(self, i):
        tokens = self.tokens
        t = tokens[i]
        if t.text == "[":
            return self.maybe_structured_binding(i)
        if t.kind != "ident":
            return i + 1
        # Local declaration `Type name(...)` / `Type* name = ...` /
        # range-for `for (Type& x : c)`.
        self.maybe_local_decl(i)
        # Scoped lock construction: `MutexLock name(expr);`
        if t.text in ("MutexLock", "WriterMutexLock", "ReaderMutexLock"):
            return self.scoped_lock(i)
        # Manual lock()/unlock().
        if t.text in ("lock", "lock_shared") and self.is_method_call(i):
            expr = self.receiver_expr(i)
            if expr:
                self.acquire(expr, tokens[i].line, manual=True)
            return self.skip_call(i)
        if t.text in ("unlock", "unlock_shared") and self.is_method_call(i):
            expr = self.receiver_expr(i)
            if expr:
                self.release(expr)
            return self.skip_call(i)
        # Plain call site.
        if (i + 1 < len(tokens) and tokens[i + 1].text == "(" and
                t.text not in _KEYWORDS and not t.text.startswith("XY_")):
            receiver = None
            if i >= 1 and tokens[i - 1].text in (".", "->"):
                rexpr = self.receiver_expr(i)
                receiver = rexpr
            self.fn.calls.append(CallSite(
                [(s.lock_id, s.line) for s in self.open_locks],
                receiver, t.text, t.line))
        return i + 1

    def is_method_call(self, i):
        tokens = self.tokens
        return (i + 1 < len(tokens) and tokens[i + 1].text == "(" and
                i >= 1 and tokens[i - 1].text in (".", "->"))

    def receiver_expr(self, i):
        """Postfix expression tokens feeding the `.`/`->` before i."""
        tokens = self.tokens
        j = i - 2  # skip the access operator
        parts = []
        need_primary = True
        while j >= 0:
            t = tokens[j]
            if t.text in (")", "]") and need_primary:
                op = _rmatching(tokens, j, "(" if t.text == ")" else "[",
                                t.text)
                if op < 0:
                    break
                parts[:0] = tokens[op:j + 1]
                j = op - 1
                # A callee / array name may precede the bracket group.
                if j >= 0 and tokens[j].kind == "ident":
                    parts.insert(0, tokens[j])
                    j -= 1
                need_primary = False
                continue
            if t.kind == "ident" and need_primary:
                parts.insert(0, t)
                j -= 1
                need_primary = False
                continue
            if t.text in (".", "->", "::") and not need_primary:
                parts.insert(0, t)
                j -= 1
                need_primary = True
                continue
            break
        return parts if parts and not need_primary else []

    def scoped_lock(self, i):
        tokens = self.tokens
        j = i + 1
        if j < len(tokens) and tokens[j].kind == "ident":
            j += 1  # variable name
        if j >= len(tokens) or tokens[j].text not in ("(", "{"):
            return i + 1
        close = _matching(tokens, j, tokens[j].text,
                          ")" if tokens[j].text == "(" else "}")
        expr = tokens[j + 1:close]
        self.acquire(expr, tokens[i].line, manual=False)
        return close + 1

    def skip_call(self, i):
        tokens = self.tokens
        if i + 1 < len(tokens) and tokens[i + 1].text == "(":
            return _matching(tokens, i + 1, "(", ")") + 1
        return i + 1

    def maybe_local_decl(self, i):
        """Records `Type [*&] name` local declarations (heuristic)."""
        tokens = self.tokens
        t = tokens[i]
        # Pattern anchored at a type-name ident that starts a statement or
        # follows `(`/`,`/`for (` — approximated by: previous token is one
        # of ; { } ( , and next tokens form  [::ident|<...>|*|&]* ident
        # followed by = ( { ; : .
        if i > 0 and tokens[i - 1].text not in (";", "{", "}", "(", ",",
                                                "const"):
            return
        j = i
        type_toks = []
        while j < len(tokens):
            tt = tokens[j]
            if tt.kind == "ident" or tt.text in ("::", "*", "&", "const"):
                type_toks.append(tt)
                j += 1
                continue
            if tt.text == "<":
                k = self.skip_angles(j)
                if k == j:
                    return
                type_toks.extend(tokens[j:k + 1])
                j = k + 1
                continue
            break
        if j >= len(tokens) or len(type_toks) < 2:
            return
        if tokens[j].text not in ("=", "(", "{", ";", ":"):
            return
        name_tok = type_toks[-1]
        if name_tok.kind != "ident" or name_tok.text in _KEYWORDS:
            return
        head = [x.text for x in type_toks[:-1] if x.text not in
                _TYPE_SPECIFIERS]
        if not head or head[-1] in ("::",):
            return
        if head[0] in _KEYWORDS or head[0] in ("return", "else"):
            return
        self.fn.locals.setdefault(name_tok.text, " ".join(head))

    def maybe_structured_binding(self, i):
        """`auto& [a, b] : range` / `auto [a, b] = expr;` — records the
        bound names with a marker type the lock pass resolves from the
        initializer expression."""
        tokens = self.tokens
        if i > 0 and tokens[i - 1].kind in ("ident", "number") and \
                tokens[i - 1].text not in ("auto",):
            return i + 1  # Array subscript.
        if i > 0 and tokens[i - 1].text in (")", "]"):
            return i + 1
        names = []
        j = i + 1
        while j < len(tokens) and tokens[j].text != "]":
            if tokens[j].kind == "ident":
                names.append(tokens[j].text)
            elif tokens[j].text != ",":
                return i + 1  # Lambda capture with & / this / =.
            j += 1
        if not names or j + 1 >= len(tokens):
            return i + 1
        sep = tokens[j + 1].text
        if sep not in (":", "="):
            return i + 1
        # Initializer expression up to the statement/loop-head end.
        k = j + 2
        depth = 0
        expr = []
        while k < len(tokens):
            tt = tokens[k].text
            if tt in ("(", "[", "{"):
                depth += 1
            elif tt in (")", "]", "}"):
                if depth == 0:
                    break
                depth -= 1
            elif tt == ";" and depth == 0:
                break
            expr.append(tt)
            k += 1
        mode = "range" if sep == ":" else "init"
        for pos, name in enumerate(names):
            self.fn.locals.setdefault(
                name, "__binding {} {} {}".format(mode, pos, " ".join(expr)))
        return j + 1

    # ---- lock scope bookkeeping -----------------------------------------

    def acquire(self, expr_tokens, line, manual):
        lock_id = self.normalize_lock(expr_tokens)
        if lock_id is None:
            return
        # The innermost open scope's index; close_brace drops the lock
        # when that scope (or a shallower one) closes.
        depth = len(self.scopes) - 1
        for held in self.open_locks:
            if held.lock_id == lock_id:
                self.fn.reacquired.append(
                    (lock_id, held.line, line, held.manual or manual))
                break
            self.fn.nested.append((held.lock_id, lock_id, held.line, line,
                                   held.manual or manual))
        self.fn.direct_locks.append((lock_id, line))
        self.open_locks.append(LockScope(lock_id, line, depth, manual))

    def release(self, expr_tokens):
        lock_id = self.normalize_lock(expr_tokens)
        if lock_id is None:
            return
        for idx in range(len(self.open_locks) - 1, -1, -1):
            if self.open_locks[idx].lock_id == lock_id:
                del self.open_locks[idx]
                return

    def normalize_lock(self, expr_tokens):
        """Maps an acquisition expression to a stable lock identity.

        Resolution is finished later (cross-TU) — here we keep the raw
        expression plus the context needed to resolve it.
        """
        text = " ".join(t.text for t in expr_tokens).strip()
        if not text:
            return None
        # Identity ignores bracket/paren contents so `docs[g]->mutex`
        # and `docs[g - 1]->mutex` pair up across a multi-lock loop.
        norm, depth = [], 0
        for t in expr_tokens:
            if t.text in ("(", "["):
                depth += 1
                if depth == 1:
                    norm.append(t.text)
                continue
            if t.text in (")", "]"):
                depth -= 1
                if depth == 0:
                    norm.append(t.text)
                continue
            if depth == 0:
                norm.append(t.text)
        return _RawLock(text, " ".join(norm), self.fn, self.rel,
                        expr_tokens[0].line if expr_tokens else 0)


class _RawLock:
    """Unresolved lock expression; global analysis resolves it to an id."""

    __slots__ = ("text", "norm", "fn", "rel", "line")

    def __init__(self, text, norm, fn, rel, line):
        self.text = text
        self.norm = norm
        self.fn = fn
        self.rel = rel
        self.line = line

    def __eq__(self, other):
        return isinstance(other, _RawLock) and self.norm == other.norm and \
            self.fn is other.fn

    def __hash__(self):
        return hash((self.norm, id(self.fn)))
