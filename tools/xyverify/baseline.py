"""Baseline file: the only sanctioned way to suppress a finding.

Format (checked in, reviewed like code):

    {
      "version": 1,
      "entries": [
        {
          "fingerprint": "rule|file|symbol",
          "justification": "why this finding is accepted, by a human"
        }
      ]
    }

Placeholder justifications (empty, or starting with TODO / FIXME /
UNJUSTIFIED) are themselves findings, so `--update-baseline` output
cannot be shipped without a human writing real justifications.  Stale
entries (matching no current finding) are findings too, so the baseline
can only shrink on its own.
"""

import json

from .report import Finding

_PLACEHOLDERS = ("todo", "fixme", "unjustified", "xxx")
_MIN_JUSTIFICATION = 15  # characters; shorter is not an explanation


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except FileNotFoundError:
        return {}
    except (OSError, ValueError) as e:
        raise SystemExit("xyverify: cannot read baseline {}: {}".format(
            path, e))
    entries = {}
    for e in doc.get("entries", []):
        entries[e.get("fingerprint", "")] = e.get("justification", "")
    return entries


def apply(findings, entries, baseline_rel):
    """Splits findings into (kept, suppressed) and appends baseline
    hygiene findings to `kept`."""
    kept, suppressed = [], []
    seen = set()
    for f in findings:
        just = entries.get(f.fingerprint)
        if just is None:
            kept.append(f)
            continue
        seen.add(f.fingerprint)
        lowered = just.strip().lower()
        if (len(just.strip()) < _MIN_JUSTIFICATION or
                lowered.startswith(_PLACEHOLDERS)):
            kept.append(Finding(
                "baseline-unjustified", baseline_rel, 0, f.fingerprint,
                "baseline entry for {} needs a real justification "
                "(got {!r})".format(f.fingerprint, just)))
        else:
            suppressed.append(f)
    for fp in sorted(set(entries) - seen):
        kept.append(Finding(
            "baseline-stale", baseline_rel, 0, fp,
            "baseline entry {} matches no current finding; delete "
            "it".format(fp)))
    return kept, suppressed


def update(path, findings, old_entries):
    """Writes a baseline covering today's findings, keeping existing
    justifications and marking new entries UNJUSTIFIED for a human."""
    entries = []
    for f in sorted(findings, key=lambda f: f.fingerprint):
        just = old_entries.get(f.fingerprint,
                               "UNJUSTIFIED: " + f.message[:120])
        entries.append({"fingerprint": f.fingerprint,
                        "justification": just})
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"version": 1, "entries": entries}, f, indent=2,
                  sort_keys=True)
        f.write("\n")
