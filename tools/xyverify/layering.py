"""Layering pass: the include graph must follow the architecture order."""

import posixpath

from .report import Finding


def layer_of(rel, config):
    for prefix, layer in config.layer_map:
        if rel == prefix or rel.startswith(prefix):
            return layer
    return None


def resolve_include(rel, target, known):
    """Maps an #include "target" to a repo-relative path, if it is ours."""
    candidates = [
        "src/" + target,
        posixpath.normpath(posixpath.join(posixpath.dirname(rel), target)),
        target,
    ]
    for cand in candidates:
        if cand in known:
            return cand
    return None


def check_layering(models, config):
    findings = []
    known = {m.rel for m in models}
    index = {layer: i for i, layer in enumerate(config.layer_order)}
    for m in models:
        src_layer = layer_of(m.rel, config)
        if src_layer is None:
            continue
        for target, line in m.includes:
            dst = resolve_include(m.rel, target, known)
            if dst is None:
                continue  # System or third-party header.
            if (posixpath.basename(dst) == config.umbrella and
                    m.rel.startswith("src/") and m.rel != dst):
                findings.append(Finding(
                    "umbrella-include", m.rel, line,
                    "{}->{}".format(m.rel, dst),
                    'includes the umbrella header "{}"; src/ modules must '
                    "include the fine-grained headers they use".format(
                        target)))
                continue
            dst_layer = layer_of(dst, config)
            if dst_layer is None:
                continue
            if index[dst_layer] > index[src_layer]:
                findings.append(Finding(
                    "layering", m.rel, line,
                    "{}->{}".format(m.rel, dst),
                    'includes "{}" ({} layer) from the {} layer; the '
                    "architecture order is {}".format(
                        target, dst_layer, src_layer,
                        " < ".join(config.layer_order))))
    return findings
